// The pdbd wire protocol: line-delimited JSON over a Unix socket.
//
// A request is one flat JSON object per line, e.g.
//
//   {"q": "lookup", "name": "dgemv"}
//   {"q": "defuse", "routine": "main", "defs": true, "line": 12}
//
// and a response is one flat JSON object per line:
//
//   {"ok": true, "generation": 3, "text": "..."}
//   {"ok": false, "code": "bad-verb", "error": "unknown verb 'foo'"}
//
// Values are strings, integers, and booleans only — no nesting — which
// keeps both ends a few dozen lines and makes every message greppable.
// The full schema lives in docs/PDBD.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

namespace pdt::pdbd {

/// One parsed request (or response) object.
struct Message {
  std::unordered_map<std::string, std::string> strings;
  std::unordered_map<std::string, std::int64_t> ints;
  std::unordered_map<std::string, bool> bools;

  [[nodiscard]] std::string str(const std::string& key,
                                std::string fallback = "") const;
  [[nodiscard]] std::int64_t num(const std::string& key,
                                 std::int64_t fallback = 0) const;
  [[nodiscard]] bool flag(const std::string& key, bool fallback = false) const;
  [[nodiscard]] bool has(const std::string& key) const;
};

/// Parses one line (without the trailing newline) into `out`. Returns
/// false with `error` set on malformed input; `out` is cleared first
/// either way. Nested arrays/objects are rejected: the protocol is flat
/// by design.
bool parseMessage(std::string_view line, Message& out, std::string& error);

/// Builds one response line (no trailing newline). Fields appear in
/// insertion order so responses are stable for byte-comparison in tests.
class MessageWriter {
 public:
  MessageWriter& field(std::string_view key, std::string_view value);
  MessageWriter& field(std::string_view key, std::int64_t value);
  MessageWriter& field(std::string_view key, std::uint64_t value);
  MessageWriter& field(std::string_view key, bool value);
  [[nodiscard]] std::string finish();

 private:
  void key(std::string_view key);
  std::string out_ = "{";
  bool first_ = true;
};

/// {"ok": false, "code": code, "error": message}
[[nodiscard]] std::string errorLine(std::string_view code,
                                    std::string_view message);

}  // namespace pdt::pdbd
