// pdbd: resident PDB query daemon.
//
// Loads a database once into an immutable pdb::Snapshot, prewarms the
// shared query::Index over it, and answers pdbq clients over a Unix
// socket — the query text is byte-identical to the one-shot tools
// (pdbtree, pdbduct, pdbcheck) because both sides render through
// src/query. A "swap" request hot-swaps to a regenerated database with
// one atomic pointer store; in-flight queries finish on the generation
// they started on. Protocol: docs/PDBD.md.
#include <iostream>
#include <string>

#include "pdbd/server.h"

namespace {

constexpr const char* kUsage =
    "usage: pdbd <file.pdb> --socket PATH [--mmap=MODE]\n"
    "  --socket PATH    Unix socket to listen on (required)\n"
    "  --mmap=MODE      input mapping: auto (default), on, off\n"
    "Serves lookup/includes/hierarchy/calltree/profile/defuse/check\n"
    "queries over line-delimited JSON; see docs/PDBD.md. Runs until a\n"
    "client sends {\"q\": \"shutdown\"}.\n"
    "exit codes: 0 clean shutdown, 1 cannot load or listen, 2 usage\n";

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string socket_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::string mmap_err; pdt::pdb::parseMmapFlag(arg, mmap_err)) {
      if (!mmap_err.empty()) {
        std::cerr << "pdbd: " << mmap_err << '\n';
        return 2;
      }
    } else if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.starts_with("-") && input.empty()) {
      input = arg;
    } else {
      std::cerr << "pdbd: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    }
  }
  if (input.empty() || socket_path.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  pdt::pdbd::Service service;
  std::string error;
  if (!service.load(input, error)) {
    std::cerr << "pdbd: " << error << '\n';
    return 1;
  }
  std::cerr << "pdbd: serving '" << input << "' generation "
            << service.current()->id << '\n';
  return pdt::pdbd::runServer(service, socket_path, std::cerr);
}
