#include "analysis/checker.h"

#include <algorithm>
#include <future>
#include <ostream>

#include "support/text.h"
#include "support/thread_pool.h"
#include "support/trace.h"

namespace pdt::analysis {

CheckResult runChecks(const ductape::PDB& pdb, const CheckOptions& options) {
  PDT_TRACE_SCOPE("check.context");
  const AnalysisContext ctx = AnalysisContext::build(pdb);
  return runChecks(ctx, options);
}

CheckResult runChecks(const AnalysisContext& ctx, const CheckOptions& options) {
  CheckResult result;
  std::string error;
  result.rules_run = selectRules(options.checks, &error);
  if (!error.empty()) {
    result.error = std::move(error);
    return result;
  }

  // One private sink per rule. With jobs > 1 the rules run concurrently on
  // the pool; either way the sinks are concatenated in registry order, so
  // the output is byte-identical for every -j value.
  std::vector<DiagSink> sinks(result.rules_run.size());
  if (options.jobs > 1 && result.rules_run.size() > 1) {
    ThreadPool pool(options.jobs);
    std::vector<std::future<void>> done;
    done.reserve(result.rules_run.size());
    for (std::size_t i = 0; i < result.rules_run.size(); ++i) {
      done.push_back(pool.submit([&ctx, rule = result.rules_run[i],
                                  sink = &sinks[i]] {
        PDT_TRACE_SCOPE("check.rule", rule->name());
        rule->run(ctx, *sink);
      }));
    }
    for (auto& f : done) f.get();
  } else {
    for (std::size_t i = 0; i < result.rules_run.size(); ++i) {
      PDT_TRACE_SCOPE("check.rule", result.rules_run[i]->name());
      result.rules_run[i]->run(ctx, sinks[i]);
    }
  }

  for (DiagSink& sink : sinks) {
    for (Diag& d : sink.diags()) result.diags.push_back(std::move(d));
  }
  std::stable_sort(result.diags.begin(), result.diags.end(), diagLess);
  for (const Diag& d : result.diags) {
    switch (d.severity) {
      case Severity::Error: ++result.errors; break;
      case Severity::Warning: ++result.warnings; break;
      case Severity::Note: ++result.notes; break;
    }
    // Counted post-sort on the caller's thread, so totals and per-rule
    // keys are identical for every -j.
    trace::count(trace::Counter::CheckFindings);
    trace::countKey("check.findings.by_rule", d.rule);
  }
  return result;
}

void renderText(const CheckResult& result, std::ostream& os) {
  for (const Diag& d : result.diags) {
    os << d.locationText() << ": " << severityName(d.severity) << ": "
       << d.message << " [" << d.rule << "]\n";
  }
  os << "pdbcheck: " << result.errors << " error(s), " << result.warnings
     << " warning(s), " << result.notes << " note(s) from "
     << result.rules_run.size() << " check(s)\n";
}

namespace {

/// JSON string escaping is shared with every other writer in the tree.
std::string jsonEscape(std::string_view text) { return escapeJson(text); }

std::string_view sarifLevel(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "note";
}

}  // namespace

void renderJson(const CheckResult& result, std::ostream& os) {
  os << "{\n";
  os << "  \"version\": \"2.1.0\",\n";
  os << "  \"runs\": [\n    {\n";
  os << "      \"tool\": {\n        \"driver\": {\n";
  os << "          \"name\": \"pdbcheck\",\n";
  os << "          \"rules\": [\n";
  for (std::size_t i = 0; i < result.rules_run.size(); ++i) {
    const Rule* r = result.rules_run[i];
    os << "            {\"id\": \"" << jsonEscape(r->name())
       << "\", \"shortDescription\": {\"text\": \""
       << jsonEscape(r->description()) << "\"}}"
       << (i + 1 < result.rules_run.size() ? "," : "") << "\n";
  }
  os << "          ]\n        }\n      },\n";
  os << "      \"results\": [\n";
  for (std::size_t i = 0; i < result.diags.size(); ++i) {
    const Diag& d = result.diags[i];
    os << "        {\"ruleId\": \"" << jsonEscape(d.rule) << "\", \"level\": \""
       << sarifLevel(d.severity) << "\", \"message\": {\"text\": \""
       << jsonEscape(d.message) << "\"}";
    if (!d.entity.empty())
      os << ", \"entity\": \"" << jsonEscape(d.entity) << "\"";
    if (d.hasLocation()) {
      os << ", \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
            "{\"uri\": \""
         << jsonEscape(d.file) << "\"}, \"region\": {\"startLine\": " << d.line
         << ", \"startColumn\": " << d.col << "}}}]";
    }
    os << "}" << (i + 1 < result.diags.size() ? "," : "") << "\n";
  }
  os << "      ]\n    }\n  ]\n}\n";
}

void render(const CheckResult& result, const CheckOptions& options,
            std::ostream& os) {
  if (options.format == CheckOptions::Format::Json) {
    renderJson(result, os);
  } else {
    renderText(result, os);
  }
}

}  // namespace pdt::analysis
