#include "analysis/context.h"

#include <algorithm>
#include <unordered_set>

namespace pdt::analysis {

using namespace ductape;

int routineArity(const pdbRoutine* r) {
  if (r->signature() == nullptr) return -1;
  return static_cast<int>(r->signature()->arguments().size());
}

bool aritiesCompatible(const pdbRoutine* a, const pdbRoutine* b) {
  const int aa = routineArity(a);
  const int ab = routineArity(b);
  return aa < 0 || ab < 0 || aa == ab;
}

bool signaturesCompatible(const pdbRoutine* a, const pdbRoutine* b) {
  const pdbType* sa = a->signature();
  const pdbType* sb = b->signature();
  if (sa == nullptr || sb == nullptr) return aritiesCompatible(a, b);
  const pdbType::typevec& pa = sa->arguments();
  const pdbType::typevec& pb = sb->arguments();
  if (pa.size() != pb.size()) return false;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i] == nullptr || pb[i] == nullptr) continue;
    if (pa[i]->name() != pb[i]->name()) return false;
  }
  return true;
}

namespace {

/// Follows ptr/ref/array/typedef links down to a class, if any.
const pdbClass* underlyingClass(const pdbType* t) {
  for (int depth = 0; t != nullptr && depth < 16; ++depth) {
    if (t->isClass() != nullptr) return t->isClass();
    if (t->referencedClass() != nullptr) return t->referencedClass();
    t = t->referencedType();
  }
  return nullptr;
}

void sortUniq(std::vector<int>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

std::vector<const pdbClass*> collectAncestors(const pdbClass* c) {
  std::vector<const pdbClass*> out;
  std::unordered_set<const pdbClass*> seen{c};
  std::vector<const pdbClass*> stack{c};
  while (!stack.empty()) {
    const pdbClass* cur = stack.back();
    stack.pop_back();
    for (const pdbBase& b : cur->baseClasses()) {
      if (b.base() == nullptr || !seen.insert(b.base()).second) continue;
      out.push_back(b.base());
      stack.push_back(b.base());
    }
  }
  return out;
}

AnalysisContext AnalysisContext::build(const PDB& pdb) {
  return build(pdb, DefUseIndex::build(pdb));
}

AnalysisContext AnalysisContext::build(const PDB& pdb,
                                       std::shared_ptr<const DefUseIndex> du) {
  AnalysisContext ctx;
  ctx.pdb = &pdb;
  ctx.du = std::move(du);

  // --- Call-graph nodes: collapse corresponding template instantiations.
  // Group key: (origin template, routine name, arity). Routines without a
  // template back-link (plain routines, unattributed specializations) are
  // singleton nodes. Iteration over getRoutineVec() is id-ordered, so node
  // numbering — and everything derived from it — is deterministic.
  struct GroupKey {
    const pdbTemplate* templ;
    std::string name;
    int arity;
    bool operator==(const GroupKey&) const = default;
  };
  struct GroupKeyHash {
    std::size_t operator()(const GroupKey& k) const {
      return std::hash<const void*>()(k.templ) ^
             (std::hash<std::string>()(k.name) * 31u) ^
             std::hash<int>()(k.arity);
    }
  };
  std::unordered_map<GroupKey, int, GroupKeyHash> group_node;
  for (const pdbRoutine* r : pdb.getRoutineVec()) {
    int node = -1;
    if (r->isTemplate() != nullptr) {
      const GroupKey key{r->isTemplate(), r->name(), routineArity(r)};
      if (const auto it = group_node.find(key); it != group_node.end()) {
        node = it->second;
      } else {
        node = static_cast<int>(ctx.nodes.size());
        ctx.nodes.emplace_back();
        ctx.nodes.back().origin = r->isTemplate();
        group_node.emplace(key, node);
      }
    } else {
      node = static_cast<int>(ctx.nodes.size());
      ctx.nodes.emplace_back();
    }
    CallNode& n = ctx.nodes[node];
    if (n.rep == nullptr || r->id() < n.rep->id()) n.rep = r;
    n.members.push_back(r);
    ctx.node_of.emplace(r, node);
  }
  for (CallNode& n : ctx.nodes) {
    std::sort(n.members.begin(), n.members.end(),
              [](const pdbRoutine* a, const pdbRoutine* b) {
                return a->id() < b->id();
              });
  }

  // --- Edges.
  for (const pdbRoutine* r : pdb.getRoutineVec()) {
    const int u = ctx.node_of.at(r);
    for (const pdbCall* call : r->callees()) {
      const auto it = ctx.node_of.find(call->call());
      if (it == ctx.node_of.end()) continue;
      ctx.nodes[u].succ.push_back(it->second);
      ctx.nodes[it->second].pred.push_back(u);
    }
  }
  for (CallNode& n : ctx.nodes) {
    sortUniq(n.succ);
    sortUniq(n.pred);
  }

  // --- Roots: main() and the defined extern "C" surface.
  for (const pdbRoutine* r : pdb.getRoutineVec()) {
    const bool is_main = r->fullName() == "main";
    const bool exported_c = r->linkage() == pdbRoutine::LK_C && r->isDefined();
    if (is_main || exported_c) ctx.roots.push_back(ctx.node_of.at(r));
  }
  sortUniq(ctx.roots);

  // --- Override index.
  for (const pdbClass* derived : pdb.getClassVec()) {
    for (const pdbClass* base : collectAncestors(derived)) {
      for (const pdbRoutine* v : base->funcMembers()) {
        if (v->virtuality() == pdbItem::VI_NO) continue;
        for (const pdbRoutine* r : derived->funcMembers()) {
          if (r->name() != v->name()) continue;
          if (!aritiesCompatible(r, v)) continue;
          ctx.overrides[v].push_back(r);
        }
      }
    }
  }
  for (auto& [v, rs] : ctx.overrides) {
    std::sort(rs.begin(), rs.end(),
              [](const pdbRoutine* a, const pdbRoutine* b) {
                return a->id() < b->id();
              });
    rs.erase(std::unique(rs.begin(), rs.end()), rs.end());
  }

  // --- Include usage: which files does each file's code refer to?
  std::unordered_map<const pdbFile*, std::unordered_set<const pdbFile*>> uses;
  const auto use = [&](const pdbLoc& from, const pdbFile* to) {
    if (!from.valid() || to == nullptr || from.file() == to) return;
    uses[from.file()].insert(to);
  };
  const auto useLoc = [&](const pdbLoc& from, const pdbLoc& to) {
    if (to.valid()) use(from, to.file());
  };
  const auto useType = [&](const pdbLoc& from, const pdbType* t) {
    if (const pdbClass* c = underlyingClass(t)) useLoc(from, c->location());
  };
  for (const pdbRoutine* r : pdb.getRoutineVec()) {
    const pdbLoc& at = r->location();
    for (const pdbCall* call : r->callees()) useLoc(at, call->call()->location());
    if (r->isTemplate() != nullptr) useLoc(at, r->isTemplate()->location());
    if (r->signature() != nullptr) {
      useType(at, r->signature()->returnType());
      for (const pdbType* p : r->signature()->arguments()) useType(at, p);
    }
  }
  for (const pdbClass* c : pdb.getClassVec()) {
    const pdbLoc& at = c->location();
    for (const pdbBase& b : c->baseClasses()) {
      if (b.base() != nullptr) useLoc(at, b.base()->location());
    }
    for (const pdbMember& m : c->dataMembers()) {
      if (m.classType() != nullptr) useLoc(at, m.classType()->location());
      useType(at, m.type());
    }
    if (c->isTemplate() != nullptr) useLoc(at, c->isTemplate()->location());
  }
  for (auto& [file, set] : uses) {
    std::vector<const pdbFile*> sorted(set.begin(), set.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const pdbFile* a, const pdbFile* b) { return a->id() < b->id(); });
    ctx.uses.emplace(file, std::move(sorted));
  }
  return ctx;
}

std::string AnalysisContext::nodeName(int node) const {
  const CallNode& n = nodes[node];
  if (n.rep == nullptr) return "<unknown>";
  std::string name = n.rep->fullName();
  if (n.origin != nullptr && n.members.size() > 1) {
    name += " (template " + n.origin->name() + ", " +
            std::to_string(n.members.size()) + " instantiations)";
  }
  return name;
}

}  // namespace pdt::analysis
