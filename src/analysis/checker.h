// The pdbcheck driver: rule selection, parallel execution, deterministic
// rendering. Library entry so tools and tests share one code path.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/rules.h"
#include "ductape/ductape.h"

namespace pdt::analysis {

struct CheckOptions {
  /// --checks selection, e.g. "all", "dead-code,include-graph",
  /// "-template-bloat" (see selectRules).
  std::string checks = "all";
  enum class Format { Text, Json } format = Format::Text;
  /// Worker threads for rule execution. Output is byte-identical for any
  /// value: rules write private sinks that are concatenated in registry
  /// order and location-sorted.
  std::size_t jobs = 1;
};

struct CheckResult {
  std::vector<Diag> diags;  // location-sorted
  std::vector<const Rule*> rules_run;
  int errors = 0;
  int warnings = 0;
  int notes = 0;
  /// Non-empty when the run could not happen (bad --checks spec).
  std::string error;

  [[nodiscard]] bool ok() const { return error.empty(); }
  /// Process exit semantics: notes are informational, warnings and errors
  /// mean findings.
  [[nodiscard]] bool hasFindings() const { return errors + warnings > 0; }
};

/// Builds the AnalysisContext and runs the selected rules.
[[nodiscard]] CheckResult runChecks(const ductape::PDB& pdb,
                                    const CheckOptions& options);

/// Runs rules over a prebuilt context (benchmarks reuse one context).
[[nodiscard]] CheckResult runChecks(const AnalysisContext& ctx,
                                    const CheckOptions& options);

/// Human-readable "file:line:col: severity: message [rule]" lines plus a
/// summary tail.
void renderText(const CheckResult& result, std::ostream& os);

/// SARIF-shaped JSON (schema documented in docs/PDBCHECK.md).
void renderJson(const CheckResult& result, std::ostream& os);

void render(const CheckResult& result, const CheckOptions& options,
            std::ostream& os);

}  // namespace pdt::analysis
