#include "analysis/du_index.h"

#include <utility>

namespace pdt::analysis {

std::shared_ptr<const DefUseIndex> DefUseIndex::build(
    const ductape::PDB& pdb) {
  auto index = std::make_shared<DefUseIndex>();
  for (const ductape::pdbFile* f : pdb.getFileVec())
    index->files_.emplace(static_cast<std::uint32_t>(f->id()), f);
  for (const ductape::pdbRoutine* r : pdb.getRoutineVec())
    index->routines_.emplace(static_cast<std::uint32_t>(r->id()), r);

  const auto& items = pdb.raw().defUses();
  index->streams_.reserve(items.size());
  for (const pdb::DefUseItem& item : items) {
    Stream s;
    s.item = &item;
    s.cfg = dataflow::Cfg::build(item);
    if (!s.cfg.irregular())
      s.rd = std::make_unique<const dataflow::ReachingDefs>(s.cfg);
    index->streams_.push_back(std::move(s));
  }
  return index;
}

const ductape::pdbFile* DefUseIndex::file(std::uint32_t id) const {
  const auto it = files_.find(id);
  return it == files_.end() ? nullptr : it->second;
}

const ductape::pdbRoutine* DefUseIndex::routine(std::uint32_t id) const {
  const auto it = routines_.find(id);
  return it == routines_.end() ? nullptr : it->second;
}

ductape::pdbLoc DefUseIndex::loc(const pdb::Pos& pos) const {
  ductape::pdbLoc l;
  l.file_ptr = file(pos.file);
  l.line_ = static_cast<int>(pos.line);
  l.col_ = static_cast<int>(pos.column);
  return l;
}

std::string DefUseIndex::posText(const pdb::Pos& pos) const {
  if (!pos.valid()) return "<generated>";
  const ductape::pdbFile* f = file(pos.file);
  std::string out = f == nullptr ? std::string("<unknown file>") : f->name();
  out += ':' + std::to_string(pos.line) + ':' + std::to_string(pos.column);
  return out;
}

std::string DefUseIndex::routineName(std::uint32_t id) const {
  const ductape::pdbRoutine* r = routine(id);
  return r == nullptr ? std::string("<unknown routine>") : r->fullName();
}

bool DefUseIndex::routineMatches(std::uint32_t id,
                                 const std::string& name) const {
  const ductape::pdbRoutine* r = routine(id);
  if (r == nullptr) return false;
  return r->name() == name || r->fullName() == name;
}

}  // namespace pdt::analysis
