// The pdbcheck rule registry. A Rule is one whole-program check over the
// shared AnalysisContext; rules are independent of each other (the checker
// may run them concurrently) and must be deterministic pure functions of
// the context: same database, same findings, in the same order.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/context.h"
#include "analysis/diagnostics.h"

namespace pdt::analysis {

class Rule {
 public:
  virtual ~Rule() = default;
  /// Stable identifier used by --checks and in diagnostics ("dead-code").
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::string_view description() const = 0;
  virtual void run(const AnalysisContext& ctx, DiagSink& sink) const = 0;
};

/// Every registered rule, in canonical (execution and report) order.
[[nodiscard]] const std::vector<const Rule*>& allRules();

/// Parses a --checks selection: a comma-separated list of rule names,
/// "all", and "-name" exclusions, applied left to right. A spec with only
/// exclusions starts from the full set ("-dead-code" = all but dead-code).
/// Returns the selection in canonical order; on an unknown name, returns
/// an empty vector and sets `error`.
[[nodiscard]] std::vector<const Rule*> selectRules(std::string_view spec,
                                                   std::string* error);

}  // namespace pdt::analysis
