// The pdbcheck rule registry. A Rule is one whole-program check over the
// shared AnalysisContext; rules are independent of each other (the checker
// may run them concurrently) and must be deterministic pure functions of
// the context: same database, same findings, in the same order.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/context.h"
#include "analysis/diagnostics.h"
#include "pdb/pdb.h"

namespace pdt::analysis {

/// Sections AnalysisContext itself touches while building its indexes
/// (call graph, override index, include-usage index): everything except
/// macros and def-use streams, which no index dereferences — the dataflow
/// rules that need `du` request it via Rule::sections().
inline constexpr pdb::Sections kContextSections =
    pdb::Sections::All & ~(pdb::Sections::Macros | pdb::Sections::DefUses);

class Rule {
 public:
  virtual ~Rule() = default;
  /// Stable identifier used by --checks and in diagnostics ("dead-code").
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::string_view description() const = 0;
  /// Database sections the rule reads (beyond what the shared context
  /// needs) — pdbcheck unions these over the selected rules to drive a
  /// lazy section-masked read of the inputs.
  [[nodiscard]] virtual pdb::Sections sections() const {
    return kContextSections;
  }
  /// Severity the rule reports with when it has nothing finer-grained to
  /// say (--list-rules shows this).
  [[nodiscard]] virtual Severity defaultSeverity() const {
    return Severity::Warning;
  }
  virtual void run(const AnalysisContext& ctx, DiagSink& sink) const = 0;
};

/// Every registered rule, in canonical (execution and report) order.
[[nodiscard]] const std::vector<const Rule*>& allRules();

/// Union of kContextSections and the selected rules' section masks: the
/// sections pdbcheck must materialize from its inputs.
[[nodiscard]] pdb::Sections requiredSections(
    const std::vector<const Rule*>& rules);

/// Parses a --checks selection: a comma-separated list of rule names,
/// "all", and "-name" exclusions, applied left to right. A spec with only
/// exclusions starts from the full set ("-dead-code" = all but dead-code).
/// Returns the selection in canonical order; on an unknown name, returns
/// an empty vector and sets `error`.
[[nodiscard]] std::vector<const Rule*> selectRules(std::string_view spec,
                                                   std::string* error);

}  // namespace pdt::analysis
