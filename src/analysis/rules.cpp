#include "analysis/rules.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "analysis/dataflow.h"

namespace pdt::analysis {

using namespace ductape;

namespace {

/// A pdbFile has no location of its own; file-level diagnostics anchor at
/// its first line so they sort and render alongside the file's entities.
pdbLoc fileLoc(const pdbFile* f) {
  pdbLoc loc;
  loc.file_ptr = f;
  loc.line_ = 1;
  loc.col_ = 1;
  return loc;
}

// ---------------------------------------------------------------------------
// dead-code: routines and classes unreachable from main / exported roots
// ---------------------------------------------------------------------------

class DeadCodeRule final : public Rule {
 public:
  std::string_view name() const override { return "dead-code"; }
  std::string_view description() const override {
    return "routines and classes unreachable from main or any exported "
           "entry point (honors virtual dispatch and ctor/dtor lifetime "
           "calls)";
  }

  void run(const AnalysisContext& ctx, DiagSink& sink) const override {
    // Without an entry point (library database with no main and no
    // extern \"C\" surface) everything would be \"dead\"; stay silent.
    if (ctx.roots.empty()) return;

    std::vector<char> reached(ctx.nodes.size(), 0);
    std::vector<int> work;
    const auto mark = [&](int n) {
      if (reached[n] == 0) {
        reached[n] = 1;
        work.push_back(n);
      }
    };
    for (const int r : ctx.roots) mark(r);
    while (!work.empty()) {
      const int u = work.back();
      work.pop_back();
      for (const int v : ctx.nodes[u].succ) mark(v);
      for (const pdbRoutine* m : ctx.nodes[u].members) {
        // Virtual dispatch: a reachable virtual makes every override in
        // the hierarchy a potential call target.
        if (const auto it = ctx.overrides.find(m); it != ctx.overrides.end()) {
          for (const pdbRoutine* o : it->second) mark(ctx.node_of.at(o));
        }
        // Lifetime pairing: constructing an object implies its destructor
        // runs, even when no explicit dtor call edge was recovered.
        if (m->kind() == pdbItem::RO_CTOR && m->parentClass() != nullptr) {
          for (const pdbRoutine* f : m->parentClass()->funcMembers()) {
            if (f->kind() != pdbItem::RO_DTOR) continue;
            if (const auto it = ctx.node_of.find(f); it != ctx.node_of.end())
              mark(it->second);
          }
        }
      }
    }

    for (std::size_t i = 0; i < ctx.nodes.size(); ++i) {
      if (reached[i] != 0) continue;
      const CallNode& n = ctx.nodes[i];
      // Pure declarations are externals whose uses we cannot see.
      const bool any_defined =
          std::any_of(n.members.begin(), n.members.end(),
                      [](const pdbRoutine* r) { return r->isDefined(); });
      if (!any_defined) continue;
      sink.report(std::string(name()), Severity::Warning,
                  "routine '" + ctx.nodeName(static_cast<int>(i)) +
                      "' is unreachable from main or any exported entry point",
                  n.rep);
    }

    for (const pdbClass* c : ctx.pdb->getClassVec()) {
      if (c->funcMembers().empty()) continue;
      bool any_defined = false;
      bool any_reached = false;
      for (const pdbRoutine* f : c->funcMembers()) {
        any_defined = any_defined || f->isDefined();
        const auto it = ctx.node_of.find(f);
        if (it != ctx.node_of.end() && reached[it->second] != 0)
          any_reached = true;
      }
      if (!any_defined || any_reached) continue;
      sink.report(std::string(name()), Severity::Note,
                  "class '" + c->fullName() + "' appears dead: none of its " +
                      std::to_string(c->funcMembers().size()) +
                      " member functions is reachable",
                  c);
    }
  }
};

// ---------------------------------------------------------------------------
// recursion-cycles: SCCs of the collapsed call graph
// ---------------------------------------------------------------------------

class RecursionCycleRule final : public Rule {
 public:
  std::string_view name() const override { return "recursion-cycles"; }
  std::string_view description() const override {
    return "strongly connected components of the call graph (direct and "
           "mutual recursion), with the cycle path";
  }
  Severity defaultSeverity() const override { return Severity::Note; }

  void run(const AnalysisContext& ctx, DiagSink& sink) const override {
    // Iterative Tarjan over the collapsed graph. Nodes are visited in
    // index order and successors are sorted, so component discovery —
    // and therefore report order — is deterministic.
    const int n = static_cast<int>(ctx.nodes.size());
    std::vector<int> index(n, -1), low(n, 0);
    std::vector<char> on_stack(n, 0);
    std::vector<int> stack;
    int next_index = 0;

    struct Frame {
      int node;
      std::size_t child;
    };
    for (int start = 0; start < n; ++start) {
      if (index[start] != -1) continue;
      std::vector<Frame> frames{{start, 0}};
      index[start] = low[start] = next_index++;
      stack.push_back(start);
      on_stack[start] = 1;
      while (!frames.empty()) {
        Frame& f = frames.back();
        const auto& succ = ctx.nodes[f.node].succ;
        if (f.child < succ.size()) {
          const int w = succ[f.child++];
          if (index[w] == -1) {
            index[w] = low[w] = next_index++;
            stack.push_back(w);
            on_stack[w] = 1;
            frames.push_back({w, 0});
          } else if (on_stack[w] != 0) {
            low[f.node] = std::min(low[f.node], index[w]);
          }
        } else {
          const int v = f.node;
          frames.pop_back();
          if (!frames.empty())
            low[frames.back().node] = std::min(low[frames.back().node], low[v]);
          if (low[v] != index[v]) continue;
          std::vector<int> scc;
          int w = -1;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            scc.push_back(w);
          } while (w != v);
          reportScc(ctx, scc, sink);
        }
      }
    }
  }

 private:
  void reportScc(const AnalysisContext& ctx, std::vector<int> scc,
                 DiagSink& sink) const {
    const bool self_loop =
        scc.size() == 1 &&
        std::binary_search(ctx.nodes[scc[0]].succ.begin(),
                           ctx.nodes[scc[0]].succ.end(), scc[0]);
    if (scc.size() < 2 && !self_loop) return;
    std::sort(scc.begin(), scc.end());
    const CallNode& anchor = ctx.nodes[scc.front()];
    if (scc.size() == 1) {
      sink.report(std::string(name()), Severity::Note,
                  "routine '" + ctx.nodeName(scc.front()) +
                      "' is directly recursive",
                  anchor.rep);
      return;
    }
    std::string path;
    for (const int v : scc) {
      if (!path.empty()) path += " -> ";
      path += ctx.nodes[v].rep->fullName();
    }
    path += " -> " + anchor.rep->fullName();
    sink.report(std::string(name()), Severity::Note,
                "recursion cycle through " + std::to_string(scc.size()) +
                    " routines: " + path,
                anchor.rep);
  }
};

// ---------------------------------------------------------------------------
// hierarchy-checks: destructor/override/hiding problems in class trees
// ---------------------------------------------------------------------------

class HierarchyRule final : public Rule {
 public:
  std::string_view name() const override { return "hierarchy-checks"; }
  std::string_view description() const override {
    return "non-virtual destructors in polymorphic base classes, virtual "
           "functions that override nothing, and hidden member functions";
  }

  void run(const AnalysisContext& ctx, DiagSink& sink) const override {
    for (const pdbClass* c : ctx.pdb->getClassVec()) {
      const std::vector<const pdbClass*> ancestors = collectAncestors(c);
      checkBaseDestructor(c, ancestors, sink);
      if (ancestors.empty()) continue;
      for (const pdbRoutine* r : c->funcMembers()) {
        if (r->kind() != pdbItem::RO_NORMAL) continue;
        checkOverrideAndHiding(r, ancestors, sink);
      }
    }
  }

 private:
  void checkBaseDestructor(const pdbClass* c,
                           const std::vector<const pdbClass*>& ancestors,
                           DiagSink& sink) const {
    if (c->derivedClasses().empty()) return;
    bool has_virtual = hasVirtualMember(c);
    for (std::size_t i = 0; !has_virtual && i < ancestors.size(); ++i)
      has_virtual = hasVirtualMember(ancestors[i]);
    if (!has_virtual) return;
    const pdbRoutine* dtor = nullptr;
    for (const pdbRoutine* f : c->funcMembers()) {
      if (f->kind() == pdbItem::RO_DTOR) dtor = f;
    }
    if (dtor != nullptr && dtor->virtuality() == pdbItem::VI_NO) {
      sink.report(std::string(name()), Severity::Warning,
                  "class '" + c->fullName() +
                      "' is used as a base class of a polymorphic hierarchy "
                      "but its destructor is not virtual",
                  dtor);
    } else if (dtor == nullptr) {
      sink.report(std::string(name()), Severity::Note,
                  "class '" + c->fullName() +
                      "' is used as a base class of a polymorphic hierarchy "
                      "and relies on an implicit non-virtual destructor",
                  c);
    }
  }

  static bool hasVirtualMember(const pdbClass* c) {
    for (const pdbRoutine* f : c->funcMembers()) {
      if (f->virtuality() != pdbItem::VI_NO) return true;
    }
    return false;
  }

  void checkOverrideAndHiding(const pdbRoutine* r,
                              const std::vector<const pdbClass*>& ancestors,
                              DiagSink& sink) const {
    bool overrides_any = false;
    const pdbRoutine* hidden_virtual = nullptr;
    const pdbRoutine* hidden_plain = nullptr;
    for (const pdbClass* base : ancestors) {
      for (const pdbRoutine* v : base->funcMembers()) {
        if (v->name() != r->name() || v->kind() != pdbItem::RO_NORMAL) continue;
        if (v->virtuality() != pdbItem::VI_NO) {
          if (signaturesCompatible(r, v)) {
            overrides_any = true;
          } else if (hidden_virtual == nullptr) {
            hidden_virtual = v;
          }
        } else if (hidden_plain == nullptr) {
          hidden_plain = v;
        }
      }
    }
    if (hidden_virtual != nullptr && !overrides_any) {
      sink.report(std::string(name()), Severity::Warning,
                  "'" + r->fullName() + "' hides virtual function '" +
                      hidden_virtual->fullName() +
                      "' with a different signature (not an override)",
                  r);
    } else if (hidden_plain != nullptr && !overrides_any &&
               r->virtuality() == pdbItem::VI_NO) {
      sink.report(std::string(name()), Severity::Warning,
                  "'" + r->fullName() + "' hides non-virtual base function '" +
                      hidden_plain->fullName() + "'",
                  r);
    }
    if (r->virtuality() != pdbItem::VI_NO && !overrides_any &&
        hidden_virtual == nullptr) {
      sink.report(std::string(name()), Severity::Note,
                  "'" + r->fullName() +
                      "' is declared virtual but overrides nothing in a base "
                      "class",
                  r);
    }
  }
};

// ---------------------------------------------------------------------------
// include-graph: include cycles and unused direct includes
// ---------------------------------------------------------------------------

class IncludeGraphRule final : public Rule {
 public:
  std::string_view name() const override { return "include-graph"; }
  std::string_view description() const override {
    return "#include cycles and direct includes no entity of the including "
           "file uses";
  }

  void run(const AnalysisContext& ctx, DiagSink& sink) const override {
    reportCycles(ctx, sink);
    reportUnusedIncludes(ctx, sink);
  }

 private:
  void reportCycles(const AnalysisContext& ctx, DiagSink& sink) const {
    const auto& files = ctx.pdb->getFileVec();
    std::unordered_map<const pdbFile*, int> idx;
    for (std::size_t i = 0; i < files.size(); ++i)
      idx.emplace(files[i], static_cast<int>(i));

    // Tarjan again, over the include graph this time.
    const int n = static_cast<int>(files.size());
    std::vector<int> index(n, -1), low(n, 0);
    std::vector<char> on_stack(n, 0);
    std::vector<int> stack;
    int next_index = 0;
    struct Frame {
      int node;
      std::size_t child;
    };
    for (int start = 0; start < n; ++start) {
      if (index[start] != -1) continue;
      std::vector<Frame> frames{{start, 0}};
      index[start] = low[start] = next_index++;
      stack.push_back(start);
      on_stack[start] = 1;
      while (!frames.empty()) {
        Frame& f = frames.back();
        const auto& incs = files[f.node]->includes();
        if (f.child < incs.size()) {
          const auto it = idx.find(incs[f.child++]);
          if (it == idx.end()) continue;
          const int w = it->second;
          if (index[w] == -1) {
            index[w] = low[w] = next_index++;
            stack.push_back(w);
            on_stack[w] = 1;
            frames.push_back({w, 0});
          } else if (on_stack[w] != 0) {
            low[f.node] = std::min(low[f.node], index[w]);
          }
        } else {
          const int v = f.node;
          frames.pop_back();
          if (!frames.empty())
            low[frames.back().node] = std::min(low[frames.back().node], low[v]);
          if (low[v] != index[v]) continue;
          std::vector<int> scc;
          int w = -1;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            scc.push_back(w);
          } while (w != v);
          if (scc.size() < 2) continue;  // files cannot self-include
          std::sort(scc.begin(), scc.end());
          std::string path;
          for (const int i : scc) {
            if (!path.empty()) path += " -> ";
            path += files[i]->name();
          }
          path += " -> " + files[scc.front()]->name();
          sink.report(std::string(name()), Severity::Warning,
                      "include cycle through " + std::to_string(scc.size()) +
                          " files: " + path,
                      files[scc.front()]->name(), fileLoc(files[scc.front()]));
        }
      }
    }
  }

  void reportUnusedIncludes(const AnalysisContext& ctx, DiagSink& sink) const {
    // Which files define code entities at all? A header that contributes
    // only macros cannot be attributed (macro expansion is not recorded in
    // the PDB), so includes of such files are never flagged.
    std::unordered_set<const pdbFile*> has_code;
    const auto note = [&](const pdbLoc& loc) {
      if (loc.valid()) has_code.insert(loc.file());
    };
    for (const pdbRoutine* r : ctx.pdb->getRoutineVec()) note(r->location());
    for (const pdbClass* c : ctx.pdb->getClassVec()) note(c->location());
    for (const pdbTemplate* t : ctx.pdb->getTemplateVec()) note(t->location());

    for (const pdbFile* f : ctx.pdb->getFileVec()) {
      if (f->isSystemFile()) continue;
      const auto used_it = ctx.uses.find(f);
      // No attribution data for this file (it defines nothing that refers
      // anywhere): an umbrella header, skip.
      if (used_it == ctx.uses.end()) continue;
      const std::unordered_set<const pdbFile*> used(used_it->second.begin(),
                                                    used_it->second.end());
      for (const pdbFile* inc : f->includes()) {
        if (inc->isSystemFile()) continue;
        // The include is justified if anything in its transitive closure
        // is used by `f`.
        std::vector<const pdbFile*> work{inc};
        std::unordered_set<const pdbFile*> seen{inc};
        bool justified = false;
        bool closure_has_code = false;
        while (!work.empty() && !justified) {
          const pdbFile* cur = work.back();
          work.pop_back();
          if (used.contains(cur)) justified = true;
          if (has_code.contains(cur)) closure_has_code = true;
          for (const pdbFile* next : cur->includes()) {
            if (seen.insert(next).second) work.push_back(next);
          }
        }
        if (justified || !closure_has_code) continue;
        sink.report(std::string(name()), Severity::Warning,
                    "'" + f->name() + "' includes '" + inc->name() +
                        "' but uses nothing from it",
                    f->name(), fileLoc(f));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// template-bloat: instantiation counts and duplicated-routine mass
// ---------------------------------------------------------------------------

class TemplateBloatRule final : public Rule {
 public:
  std::string_view name() const override { return "template-bloat"; }
  std::string_view description() const override {
    return "per-template instantiation counts and estimated duplicated "
           "routine mass (used-mode back-mapping)";
  }
  Severity defaultSeverity() const override { return Severity::Note; }

  void run(const AnalysisContext& ctx, DiagSink& sink) const override {
    std::unordered_map<const pdbTemplate*, int> class_counts;
    for (const pdbClass* c : ctx.pdb->getClassVec()) {
      if (c->isTemplate() != nullptr) ++class_counts[c->isTemplate()];
    }
    // Routine instantiations, already grouped per template member by the
    // collapsed call graph.
    struct Tally {
      int routines = 0;
      int members = 0;
      long dup_lines = 0;
    };
    std::unordered_map<const pdbTemplate*, Tally> tallies;
    for (const CallNode& n : ctx.nodes) {
      if (n.origin == nullptr) continue;
      Tally& t = tallies[n.origin];
      t.routines += static_cast<int>(n.members.size());
      t.members += 1;
      // Each instantiation beyond the first duplicates the member's body.
      for (std::size_t i = 1; i < n.members.size(); ++i)
        t.dup_lines += bodyLines(n.members[i]);
    }

    for (const pdbTemplate* t : ctx.pdb->getTemplateVec()) {
      const auto cls = class_counts.find(t);
      const auto tally = tallies.find(t);
      const int classes = cls == class_counts.end() ? 0 : cls->second;
      const Tally routines = tally == tallies.end() ? Tally{} : tally->second;
      if (classes == 0 && routines.routines == 0) continue;
      // A single instantiation is not bloat; only report templates that were
      // stamped out more than once (duplicated class or routine bodies).
      if (classes < 2 && routines.routines <= routines.members) continue;
      std::string msg = "template '" + t->fullName() + "': ";
      msg += std::to_string(classes) + " class instantiation(s), ";
      msg += std::to_string(routines.routines) + " routine instantiation(s)";
      if (routines.members > 0)
        msg += " across " + std::to_string(routines.members) + " member(s)";
      msg += "; ~" + std::to_string(routines.dup_lines) +
             " duplicated source lines";
      sink.report(std::string(name()), Severity::Note, std::move(msg), t);
    }
  }

 private:
  static long bodyLines(const pdbRoutine* r) {
    const pdbLoc& b = r->bodyBegin();
    const pdbLoc& e = r->bodyEnd();
    if (b.valid() && e.valid() && e.line() >= b.line())
      return e.line() - b.line() + 1;
    return 1;
  }
};

// ---------------------------------------------------------------------------
// Dataflow rules over the du section (PDB_FORMAT.md §du)
// ---------------------------------------------------------------------------

namespace du = pdb::du;

/// Shared base for the du-stream rules: these read the raw def-use
/// streams (which the object graph does not wrap) through the context's
/// DefUseIndex, which resolves stream positions and owning-routine ids
/// back to object-graph entities and carries each stream's prebuilt
/// CFG + reaching-defs solution (one solve shared by every rule).
class DuRuleBase : public Rule {
 public:
  pdb::Sections sections() const override {
    return kContextSections | pdb::Sections::DefUses;
  }
};

class UninitializedReadRule final : public DuRuleBase {
 public:
  std::string_view name() const override { return "uninitialized-read"; }
  std::string_view description() const override {
    return "local variables whose every reaching definition at a read is "
           "the uninitialized declaration (reaching-definitions over the "
           "du stream)";
  }

  void run(const AnalysisContext& ctx, DiagSink& sink) const override {
    const DefUseIndex& world = *ctx.du;
    for (const DefUseIndex::Stream& stream : world.streams()) {
      if (stream.rd == nullptr) continue;  // goto/label/try: no reliable CFG
      const pdb::DefUseItem& item = *stream.item;
      const dataflow::ReachingDefs& rd = *stream.rd;
      std::unordered_set<int> reported;
      for (std::size_t e = 0; e < item.events.size(); ++e) {
        const auto& ev = item.events[e];
        if (ev.op != pdb::DuOp::Use) continue;
        if ((ev.flags & du::kMember) != 0) continue;  // may alias
        const int var = rd.varOf(static_cast<dataflow::EventIndex>(e));
        if (reported.contains(var)) continue;
        // Only a must-uninitialized read fires: the declaration is the
        // sole definition reaching this use on every path.
        const auto& defs =
            rd.defsReaching(static_cast<dataflow::EventIndex>(e));
        if (defs.size() != 1) continue;
        const auto& def = item.events[defs.front()];
        if ((def.flags & du::kUninit) == 0) continue;
        reported.insert(var);
        sink.report(std::string(name()), Severity::Warning,
                    "local '" + std::string(ev.name) +
                        "' is read here but no path from its declaration "
                        "assigns it a value first",
                    world.routineName(item.routine), world.loc(ev.pos));
      }
    }
  }
};

class DeadStoreRule final : public DuRuleBase {
 public:
  std::string_view name() const override { return "dead-store"; }
  std::string_view description() const override {
    return "assignments to locals whose value no later read can observe "
           "(reaching-definitions over the du stream; skips escaped, "
           "member, reference, and parameter storage)";
  }

  void run(const AnalysisContext& ctx, DiagSink& sink) const override {
    const DefUseIndex& world = *ctx.du;
    for (const DefUseIndex::Stream& stream : world.streams()) {
      if (stream.rd == nullptr) continue;
      const pdb::DefUseItem& item = *stream.item;
      const dataflow::ReachingDefs& rd = *stream.rd;
      for (std::size_t var = 0; var < rd.varNames().size(); ++var) {
        if (!storeTrackable(item, rd, static_cast<int>(var))) continue;
        const auto& defs = rd.defsOf(static_cast<int>(var));
        // The first def is the declaration/initializer; redundant
        // initialization is style, not a lost value, so start at the
        // second.
        for (std::size_t d = 1; d < defs.size(); ++d) {
          if (!rd.usesReached(defs[d]).empty()) continue;
          const auto& ev = item.events[defs[d]];
          sink.report(std::string(name()), Severity::Warning,
                      "value assigned to local '" + std::string(ev.name) +
                          "' is never read",
                      world.routineName(item.routine), world.loc(ev.pos));
        }
      }
    }
  }

 private:
  /// A variable is store-trackable when every write we see is every write
  /// there is: no member/alias paths, no escaped or conditionally-written
  /// storage, no references (writes land elsewhere), no parameters
  /// (callers may observe via aliasing conventions).
  static bool storeTrackable(const pdb::DefUseItem& item,
                             const dataflow::ReachingDefs& rd, int var) {
    constexpr std::uint8_t kSkip =
        du::kMember | du::kReference | du::kUnknown;
    for (const auto e : rd.defsOf(var)) {
      const auto& ev = item.events[e];
      if ((ev.flags & (kSkip | du::kParam)) != 0) return false;
    }
    for (const auto e : rd.usesOf(var)) {
      if ((item.events[e].flags & kSkip) != 0) return false;
    }
    return true;
  }
};

class NullDerefRule final : public DuRuleBase {
 public:
  std::string_view name() const override { return "null-deref-candidate"; }
  std::string_view description() const override {
    return "dereferences of pointers whose every definition in the "
           "routine is a null constant (flow-insensitive over the du "
           "stream)";
  }

  void run(const AnalysisContext& ctx, DiagSink& sink) const override {
    const DefUseIndex& world = *ctx.du;
    struct VarFacts {
      std::string_view name;
      int defs = 0;
      bool all_null = true;
      bool escaped = false;  // kUnknown/kParam/kMember anywhere
      const pdb::DefUseItem::Event* first_deref = nullptr;
    };
    for (const DefUseIndex::Stream& stream : world.streams()) {
      const pdb::DefUseItem& item = *stream.item;
      // Flow-insensitive (the first Andersen-style step): one pass over
      // the stream, no CFG needed — irregular routines included.
      std::vector<VarFacts> vars;
      std::unordered_map<std::string_view, std::size_t> index;
      for (const auto& ev : item.events) {
        if (ev.op == pdb::DuOp::Marker) continue;
        const auto [it, inserted] = index.try_emplace(ev.name, vars.size());
        if (inserted) vars.push_back({.name = ev.name});
        VarFacts& v = vars[it->second];
        if ((ev.flags & (du::kMember | du::kParam | du::kUnknown)) != 0)
          v.escaped = true;
        if (ev.op == pdb::DuOp::Def) {
          ++v.defs;
          v.all_null = v.all_null && (ev.flags & du::kNullValue) != 0;
        } else if ((ev.flags & du::kDeref) != 0 && v.first_deref == nullptr) {
          v.first_deref = &ev;
        }
      }
      for (const VarFacts& v : vars) {
        if (v.defs == 0 || !v.all_null || v.escaped ||
            v.first_deref == nullptr)
          continue;
        sink.report(std::string(name()), Severity::Warning,
                    "pointer '" + std::string(v.name) +
                        "' can only hold the null value here and is "
                        "dereferenced",
                    world.routineName(item.routine),
                    world.loc(v.first_deref->pos));
      }
    }
  }
};

}  // namespace

const std::vector<const Rule*>& allRules() {
  static const DeadCodeRule dead_code;
  static const RecursionCycleRule recursion;
  static const HierarchyRule hierarchy;
  static const IncludeGraphRule includes;
  static const TemplateBloatRule bloat;
  static const UninitializedReadRule uninit;
  static const DeadStoreRule dead_store;
  static const NullDerefRule null_deref;
  static const std::vector<const Rule*> rules{
      &dead_code, &recursion, &hierarchy,  &includes,
      &bloat,     &uninit,    &dead_store, &null_deref};
  return rules;
}

pdb::Sections requiredSections(const std::vector<const Rule*>& rules) {
  pdb::Sections sections = kContextSections;
  for (const Rule* rule : rules) sections |= rule->sections();
  return sections;
}

std::vector<const Rule*> selectRules(std::string_view spec,
                                     std::string* error) {
  const auto& rules = allRules();
  const auto find = [&](std::string_view name) -> const Rule* {
    for (const Rule* r : rules) {
      if (r->name() == name) return r;
    }
    return nullptr;
  };

  if (spec.empty()) spec = "all";
  std::vector<std::string_view> tokens;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    tokens.push_back(spec.substr(0, comma));
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
  }
  const bool only_exclusions =
      std::all_of(tokens.begin(), tokens.end(), [](std::string_view t) {
        return !t.empty() && t.front() == '-';
      });

  std::unordered_set<const Rule*> selected;
  if (only_exclusions) selected.insert(rules.begin(), rules.end());
  for (std::string_view token : tokens) {
    if (token.empty()) continue;
    const bool exclude = token.front() == '-';
    if (exclude) token.remove_prefix(1);
    if (token == "all") {
      if (exclude) {
        selected.clear();
      } else {
        selected.insert(rules.begin(), rules.end());
      }
      continue;
    }
    const Rule* rule = find(token);
    if (rule == nullptr) {
      if (error != nullptr) {
        *error = "unknown check '" + std::string(token) + "' (available:";
        for (const Rule* r : rules) *error += " " + std::string(r->name());
        *error += ")";
      }
      return {};
    }
    if (exclude) {
      selected.erase(rule);
    } else {
      selected.insert(rule);
    }
  }

  std::vector<const Rule*> out;
  for (const Rule* r : rules) {
    if (selected.contains(r)) out.push_back(r);
  }
  return out;
}

}  // namespace pdt::analysis
