// Intra-procedural dataflow over PDB def-use streams (pdbcheck's du
// section, PDB_FORMAT.md §du).
//
// The du stream is marker-structured: the IL analyzer emits structural
// markers from a closed vocabulary (then/else/endif, loop/doloop/body/
// endloop, switch/case/default/endswitch, ret/break/continue, irregular)
// interleaved with the def/use events, which lets this module rebuild a
// CFG-lite per routine without re-parsing any source. On top of the CFG
// sits a generic forward worklist solver with pluggable transfer
// functions, and one concrete client: reaching definitions, the engine
// behind the uninitialized-read and dead-store rules.
//
// Precision contract: the CFG may only OVER-approximate the real paths
// (extra edges, never missing ones). Union-style analyses built on it
// then err toward larger fact sets, which the rules turn into silence —
// a missed finding, never a false positive. Streams containing the
// "irregular" marker (goto, labels, try) are flagged so flow-sensitive
// clients can skip the routine entirely.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "pdb/pdb.h"

namespace pdt::analysis::dataflow {

using EventIndex = std::uint32_t;

/// One CFG-lite basic block: a run of consecutive stream events with a
/// single entry and exit.
struct Block {
  std::vector<EventIndex> events;  // indices into DefUseItem::events
  std::vector<int> succ;
  std::vector<int> pred;
};

/// Per-routine control-flow graph rebuilt from the marker stream.
class Cfg {
 public:
  /// Builds the CFG for one routine's stream. Never fails: malformed or
  /// irregular streams produce a graph with `irregular()` set, which
  /// solvers treat as "all bets off".
  [[nodiscard]] static Cfg build(const pdb::DefUseItem& item);

  [[nodiscard]] const pdb::DefUseItem& item() const { return *item_; }
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }
  [[nodiscard]] int entry() const { return entry_; }
  [[nodiscard]] int exit() const { return exit_; }
  /// Block containing an event (every non-dropped event is in one block).
  [[nodiscard]] int blockOf(EventIndex e) const { return block_of_[e]; }
  /// True when the stream contains irregular control flow (goto, label,
  /// try) or structure the builder could not pair up.
  [[nodiscard]] bool irregular() const { return irregular_; }

 private:
  const pdb::DefUseItem* item_ = nullptr;
  std::vector<Block> blocks_;
  std::vector<int> block_of_;
  int entry_ = 0;
  int exit_ = 0;
  bool irregular_ = false;
};

/// Dense bitset used as the dataflow lattice element (powerset, union
/// meet).
class BitSet {
 public:
  BitSet() = default;
  explicit BitSet(std::size_t bits) : bits_(bits), words_((bits + 63) / 64) {}

  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset(std::size_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  /// this |= other; returns true when any bit changed.
  bool unionWith(const BitSet& other);
  [[nodiscard]] std::size_t size() const { return bits_; }
  /// Invokes fn on every set bit, ascending.
  void forEach(const std::function<void(std::size_t)>& fn) const;

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Pluggable transfer function: applies one block's effect to `state` in
/// place. The framework owns iteration order and convergence; clients own
/// semantics.
using Transfer = std::function<void(int block, BitSet& state)>;

/// Generic forward may-analysis: meet is union, boundary is the empty
/// set. Returns the fixed-point IN state of every block. Iterates a
/// worklist seeded in block order, so the result is deterministic.
[[nodiscard]] std::vector<BitSet> solveForward(const Cfg& cfg,
                                               std::size_t lattice_bits,
                                               const Transfer& transfer);

/// Reaching definitions over one routine's du stream. Facts are def
/// events; a def "reaches" a point when some CFG path from the def to the
/// point is free of killing redefinitions of the same variable.
///
/// Kill semantics honor the stream's flags: a def carrying kUnknown
/// (escaped storage, conditionally-evaluated context) generates but never
/// kills — a weak update — so downstream rules see every value such
/// storage might still hold.
class ReachingDefs {
 public:
  explicit ReachingDefs(const Cfg& cfg);

  /// Defs reaching the given use event, ascending by event index.
  [[nodiscard]] const std::vector<EventIndex>& defsReaching(
      EventIndex use_event) const;
  /// Uses reached by the given def event, ascending by event index.
  [[nodiscard]] const std::vector<EventIndex>& usesReached(
      EventIndex def_event) const;

  /// Dense variable numbering of the stream (names in first-seen order).
  [[nodiscard]] const std::vector<std::string_view>& varNames() const {
    return var_names_;
  }
  /// Variable index of an event, -1 for markers.
  [[nodiscard]] int varOf(EventIndex e) const { return var_of_[e]; }
  /// All def events of a variable, in stream order.
  [[nodiscard]] const std::vector<EventIndex>& defsOf(int var) const {
    return defs_of_var_[var];
  }
  /// All use events of a variable, in stream order.
  [[nodiscard]] const std::vector<EventIndex>& usesOf(int var) const {
    return uses_of_var_[var];
  }

 private:
  static const std::vector<EventIndex> kEmpty;

  std::vector<std::string_view> var_names_;
  std::vector<int> var_of_;
  std::vector<std::vector<EventIndex>> defs_of_var_;
  std::vector<std::vector<EventIndex>> uses_of_var_;
  /// use event -> reaching defs; def event -> reached uses. Sparse maps
  /// keyed by event index (streams are small; vectors indexed by event).
  std::vector<std::vector<EventIndex>> reaching_;
  std::vector<std::vector<EventIndex>> reached_;
};

}  // namespace pdt::analysis::dataflow
