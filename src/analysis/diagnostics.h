// Diagnostics for the whole-program analyses (pdbcheck).
//
// A Diag is one finding of one rule: severity, message, the entity it is
// about, and a full source position recovered from the PDB. Entities with
// no recorded source location (compiler-generated ctors/dtors, builtins)
// render as "<generated>" rather than an empty or garbage file:line.
//
// DiagSink is the accumulation interface rules write into; each rule gets
// its own sink so independent rules can run on worker threads, and the
// checker concatenates and location-sorts the per-rule results into one
// deterministic stream (the same bytes at -j 1 and -j N).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "ductape/ductape.h"

namespace pdt::analysis {

enum class Severity { Note, Warning, Error };

[[nodiscard]] std::string_view severityName(Severity s);

/// The spelling used for positions with no source location.
inline constexpr std::string_view kGeneratedLoc = "<generated>";

struct Diag {
  std::string rule;     // rule id ("dead-code")
  Severity severity = Severity::Warning;
  std::string message;  // human-readable finding text
  std::string entity;   // fully qualified name of the subject ("" if none)
  std::string file;     // source file path; "" means no location
  int line = 0;
  int col = 0;

  [[nodiscard]] bool hasLocation() const { return !file.empty(); }
  /// "path:line:col" or "<generated>".
  [[nodiscard]] std::string locationText() const;
};

/// Renders a DUCTAPE location, "<generated>" when the item has none.
[[nodiscard]] std::string locationText(const ductape::pdbLoc& loc);

/// Deterministic presentation order: location, then rule, then message.
[[nodiscard]] bool diagLess(const Diag& a, const Diag& b);

class DiagSink {
 public:
  void report(std::string rule, Severity severity, std::string message,
              const ductape::pdbItem* subject);
  void report(std::string rule, Severity severity, std::string message,
              std::string entity, const ductape::pdbLoc& loc);

  [[nodiscard]] const std::vector<Diag>& diags() const { return diags_; }
  [[nodiscard]] std::vector<Diag>& diags() { return diags_; }

 private:
  std::vector<Diag> diags_;
};

}  // namespace pdt::analysis
