#include "analysis/diagnostics.h"

#include <tuple>

namespace pdt::analysis {

std::string_view severityName(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "note";
}

std::string locationText(const ductape::pdbLoc& loc) {
  if (!loc.valid()) return std::string(kGeneratedLoc);
  return loc.file()->name() + ":" + std::to_string(loc.line()) + ":" +
         std::to_string(loc.col());
}

std::string Diag::locationText() const {
  if (!hasLocation()) return std::string(kGeneratedLoc);
  return file + ":" + std::to_string(line) + ":" + std::to_string(col);
}

bool diagLess(const Diag& a, const Diag& b) {
  // Located diagnostics first (sorted by position), then <generated> ones.
  const auto key = [](const Diag& d) {
    return std::tuple<bool, const std::string&, int, int, const std::string&,
                      const std::string&, const std::string&>(
        !d.hasLocation(), d.file, d.line, d.col, d.rule, d.message, d.entity);
  };
  return key(a) < key(b);
}

void DiagSink::report(std::string rule, Severity severity, std::string message,
                      const ductape::pdbItem* subject) {
  report(std::move(rule), severity, std::move(message),
         subject != nullptr ? subject->fullName() : std::string{},
         subject != nullptr ? subject->location() : ductape::pdbLoc{});
}

void DiagSink::report(std::string rule, Severity severity, std::string message,
                      std::string entity, const ductape::pdbLoc& loc) {
  Diag d;
  d.rule = std::move(rule);
  d.severity = severity;
  d.message = std::move(message);
  d.entity = std::move(entity);
  if (loc.valid()) {
    d.file = loc.file()->name();
    d.line = loc.line();
    d.col = loc.col();
  }
  diags_.push_back(std::move(d));
}

}  // namespace pdt::analysis
