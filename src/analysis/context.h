// AnalysisContext: the shared whole-program indexes pdbcheck rules run
// over. Built once per database, then handed read-only to every rule (the
// checker runs independent rules on worker threads, so nothing here may
// mutate after build()).
//
// The call graph is built from pdbRoutine::callees()/callers() with
// template-instantiation edges collapsed onto their origin templates:
// corresponding member routines of Stack<int> and Stack<double> (both
// back-mapped to template Stack by the paper's used-mode recovery) share
// one node, so analyses see the program the way its author wrote it, not
// the way the instantiator expanded it.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/du_index.h"
#include "ductape/ductape.h"

namespace pdt::analysis {

/// One call-graph node: a routine, or the family of routines instantiated
/// from the same template member (collapsed).
struct CallNode {
  /// Lowest-id member; supplies the display name and source location.
  const ductape::pdbRoutine* rep = nullptr;
  /// Every routine collapsed into this node, in id order.
  std::vector<const ductape::pdbRoutine*> members;
  /// The template the members were instantiated from (null for plain
  /// routines and for specializations without a template back-link).
  const ductape::pdbTemplate* origin = nullptr;
  std::vector<int> succ;  // callee nodes, sorted, unique
  std::vector<int> pred;  // caller nodes, sorted, unique
};

struct AnalysisContext {
  const ductape::PDB* pdb = nullptr;

  // --- Collapsed call graph -----------------------------------------------
  std::vector<CallNode> nodes;
  std::unordered_map<const ductape::pdbRoutine*, int> node_of;

  /// Entry points for reachability: main() plus defined extern "C"
  /// routines (the exported surface of a library). Node indices, sorted.
  std::vector<int> roots;

  // --- Class hierarchy index ----------------------------------------------
  /// base virtual routine -> routines in derived classes that override it
  /// (same name, compatible arity), sorted by id.
  std::unordered_map<const ductape::pdbRoutine*,
                     std::vector<const ductape::pdbRoutine*>>
      overrides;

  // --- Include graph usage ------------------------------------------------
  /// file -> files whose entities its own entities reference (call targets,
  /// base classes, member/signature class types, template origins).
  /// Sorted by id, unique. Used by the unused-include check.
  std::unordered_map<const ductape::pdbFile*,
                     std::vector<const ductape::pdbFile*>>
      uses;

  // --- Def-use streams ------------------------------------------------------
  /// Shared per-stream CFG + reaching-defs (never null after build). The
  /// du rules consume this instead of re-solving per rule; callers that
  /// already hold one (query::Index) pass it in to avoid the rebuild.
  std::shared_ptr<const DefUseIndex> du;

  [[nodiscard]] static AnalysisContext build(const ductape::PDB& pdb);
  [[nodiscard]] static AnalysisContext build(
      const ductape::PDB& pdb, std::shared_ptr<const DefUseIndex> du);

  /// Display name of a node: the representative's qualified name, plus the
  /// origin template and instantiation count when collapsed.
  [[nodiscard]] std::string nodeName(int node) const;
};

/// All transitive base classes of `c`, visited depth-first in declaration
/// order (each class once; virtual bases deduplicated).
[[nodiscard]] std::vector<const ductape::pdbClass*> collectAncestors(
    const ductape::pdbClass* c);

/// Parameter count of a routine's signature, -1 when unknown.
[[nodiscard]] int routineArity(const ductape::pdbRoutine* r);

/// Whether two routines "correspond" (hierarchy override, or the same
/// member across instantiations): names are compared by the caller; this
/// checks arity compatibility, with unknown arity matching anything.
[[nodiscard]] bool aritiesCompatible(const ductape::pdbRoutine* a,
                                     const ductape::pdbRoutine* b);

/// Stricter check used by the hierarchy rules: same arity AND matching
/// parameter type names position by position ('f(int)' does not override
/// 'f(double)'). Unknown signatures fall back to arity compatibility.
[[nodiscard]] bool signaturesCompatible(const ductape::pdbRoutine* a,
                                        const ductape::pdbRoutine* b);

}  // namespace pdt::analysis
