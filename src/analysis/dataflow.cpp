#include "analysis/dataflow.h"

#include <algorithm>
#include <deque>
#include <string_view>
#include <unordered_map>

namespace pdt::analysis::dataflow {

namespace {

using pdb::DefUseItem;
using pdb::DuOp;

/// Recursive-descent builder over the well-nested marker grammar the IL
/// analyzer emits. Any stream that does not match the grammar (stray or
/// missing markers) is flagged irregular rather than rejected.
struct Builder {
  explicit Builder(const DefUseItem& item) : item_(item) {}

  void run() {
    entry_ = newBlock();
    exit_ = newBlock();
    cur_ = entry_;
    parseSeq({});
    if (i_ < item_.events.size()) irregular_ = true;  // unconsumed stop marker
    edge(cur_, exit_);  // falling off the end returns
  }
  int newBlock() {
    blocks_.emplace_back();
    return static_cast<int>(blocks_.size()) - 1;
  }
  void edge(int from, int to) {
    blocks_[from].succ.push_back(to);
    blocks_[to].pred.push_back(from);
  }
  [[nodiscard]] std::string_view markerAt(std::size_t i) const {
    const DefUseItem::Event& e = item_.events[i];
    return e.op == DuOp::Marker ? e.name : std::string_view{};
  }
  static bool contains(const std::vector<std::string_view>& set,
                       std::string_view name) {
    return std::find(set.begin(), set.end(), name) != set.end();
  }

  /// Consumes events until one of `stop` (left unconsumed) or stream end.
  void parseSeq(const std::vector<std::string_view>& stop) {
    while (i_ < item_.events.size()) {
      const std::string_view marker = markerAt(i_);
      if (marker.empty()) {  // plain def/use event
        blocks_[cur_].events.push_back(static_cast<EventIndex>(i_));
        ++i_;
        continue;
      }
      if (contains(stop, marker)) return;
      if (marker == "then") {
        parseIf();
      } else if (marker == "loop") {
        parseLoop();
      } else if (marker == "doloop") {
        parseDo();
      } else if (marker == "switch") {
        parseSwitch();
      } else if (marker == "ret") {
        ++i_;
        edge(cur_, exit_);
        cur_ = newBlock();  // continuation is unreachable
      } else if (marker == "break") {
        ++i_;
        if (break_targets_.empty()) {
          irregular_ = true;
        } else {
          edge(cur_, break_targets_.back());
          cur_ = newBlock();
        }
      } else if (marker == "continue") {
        ++i_;
        if (continue_targets_.empty()) {
          irregular_ = true;
        } else {
          edge(cur_, continue_targets_.back());
          cur_ = newBlock();
        }
      } else {
        // "irregular", or a structural closer with no matching opener.
        irregular_ = true;
        ++i_;
      }
    }
  }

  // `cur_` holds the condition events; we are at "then".
  void parseIf() {
    ++i_;
    const int cond = cur_;
    const int then_entry = newBlock();
    edge(cond, then_entry);
    cur_ = then_entry;
    parseSeq({"else", "endif"});
    const int then_exit = cur_;
    int else_exit = -1;
    if (i_ < item_.events.size() && markerAt(i_) == "else") {
      ++i_;
      const int else_entry = newBlock();
      edge(cond, else_entry);
      cur_ = else_entry;
      parseSeq({"endif"});
      else_exit = cur_;
    }
    if (i_ < item_.events.size() && markerAt(i_) == "endif") ++i_;
    else irregular_ = true;
    const int join = newBlock();
    edge(then_exit, join);
    if (else_exit >= 0) edge(else_exit, join);
    else edge(cond, join);  // no else: condition may fail straight through
    cur_ = join;
  }

  // while/for: "loop" <cond events> "body" <body+increment> "endloop".
  void parseLoop() {
    ++i_;
    const int before = cur_;
    const int header = newBlock();
    edge(before, header);
    cur_ = header;
    parseSeq({"body"});
    const int cond_exit = cur_;
    if (i_ < item_.events.size() && markerAt(i_) == "body") ++i_;
    else irregular_ = true;
    const int join = newBlock();
    break_targets_.push_back(join);
    continue_targets_.push_back(header);
    const int body_entry = newBlock();
    edge(cond_exit, body_entry);
    edge(cond_exit, join);  // zero iterations
    cur_ = body_entry;
    parseSeq({"endloop"});
    edge(cur_, header);  // back edge
    if (i_ < item_.events.size() && markerAt(i_) == "endloop") ++i_;
    else irregular_ = true;
    break_targets_.pop_back();
    continue_targets_.pop_back();
    cur_ = join;
  }

  // do-while: "doloop" "body" <body+cond events> "endloop". The body runs
  // at least once; the condition events sit at the end of the body region.
  void parseDo() {
    ++i_;
    if (i_ < item_.events.size() && markerAt(i_) == "body") ++i_;
    else irregular_ = true;
    const int before = cur_;
    const int body_entry = newBlock();
    edge(before, body_entry);
    const int join = newBlock();
    break_targets_.push_back(join);
    continue_targets_.push_back(body_entry);
    cur_ = body_entry;
    parseSeq({"endloop"});
    edge(cur_, body_entry);  // back edge
    edge(cur_, join);
    if (i_ < item_.events.size() && markerAt(i_) == "endloop") ++i_;
    else irregular_ = true;
    break_targets_.pop_back();
    continue_targets_.pop_back();
    cur_ = join;
  }

  // "switch" ("case"|"default" <stmts>)* "endswitch". Each label is
  // entered from the switch head; label regions fall through to the next.
  void parseSwitch() {
    ++i_;
    const int head = cur_;
    const int join = newBlock();
    break_targets_.push_back(join);
    bool has_default = false;
    int prev_exit = -1;
    while (i_ < item_.events.size()) {
      const std::string_view marker = markerAt(i_);
      if (marker == "case" || marker == "default") {
        has_default = has_default || marker == "default";
        ++i_;
        const int label_entry = newBlock();
        edge(head, label_entry);
        if (prev_exit >= 0) edge(prev_exit, label_entry);  // fallthrough
        cur_ = label_entry;
        parseSeq({"case", "default", "endswitch"});
        prev_exit = cur_;
        continue;
      }
      break;
    }
    if (i_ < item_.events.size() && markerAt(i_) == "endswitch") ++i_;
    else irregular_ = true;
    if (prev_exit >= 0) edge(prev_exit, join);
    // No default label (or an empty switch): the selector may match
    // nothing and control falls straight through.
    if (!has_default || prev_exit < 0) edge(head, join);
    break_targets_.pop_back();
    cur_ = join;
  }

  const DefUseItem& item_;
  std::vector<Block> blocks_;
  std::size_t i_ = 0;
  int cur_ = 0;
  int entry_ = 0;
  int exit_ = 0;
  bool irregular_ = false;
  std::vector<int> break_targets_;
  std::vector<int> continue_targets_;
};

}  // namespace

Cfg Cfg::build(const pdb::DefUseItem& item) {
  Builder b(item);
  b.run();
  Cfg cfg;
  cfg.item_ = &item;
  cfg.blocks_ = std::move(b.blocks_);
  cfg.entry_ = b.entry_;
  cfg.exit_ = b.exit_;
  cfg.irregular_ = b.irregular_;
  cfg.block_of_.assign(item.events.size(), cfg.entry_);
  for (std::size_t blk = 0; blk < cfg.blocks_.size(); ++blk)
    for (const EventIndex e : cfg.blocks_[blk].events)
      cfg.block_of_[e] = static_cast<int>(blk);
  return cfg;
}

bool BitSet::unionWith(const BitSet& other) {
  bool changed = false;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const std::uint64_t next = words_[w] | other.words_[w];
    changed = changed || next != words_[w];
    words_[w] = next;
  }
  return changed;
}

void BitSet::forEach(const std::function<void(std::size_t)>& fn) const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      fn(w * 64 + static_cast<std::size_t>(bit));
      word &= word - 1;
    }
  }
}

std::vector<BitSet> solveForward(const Cfg& cfg, std::size_t lattice_bits,
                                 const Transfer& transfer) {
  const std::size_t n = cfg.blocks().size();
  std::vector<BitSet> in(n, BitSet(lattice_bits));
  std::deque<int> work;
  std::vector<char> queued(n, 1);
  for (std::size_t b = 0; b < n; ++b) work.push_back(static_cast<int>(b));
  while (!work.empty()) {
    const int b = work.front();
    work.pop_front();
    queued[b] = 0;
    BitSet out = in[b];
    transfer(b, out);
    for (const int s : cfg.blocks()[b].succ) {
      if (in[s].unionWith(out) && queued[s] == 0) {
        queued[s] = 1;
        work.push_back(s);
      }
    }
  }
  return in;
}

const std::vector<EventIndex> ReachingDefs::kEmpty;

ReachingDefs::ReachingDefs(const Cfg& cfg) {
  const auto& events = cfg.item().events;
  var_of_.assign(events.size(), -1);
  std::unordered_map<std::string_view, int> var_ids;
  for (std::size_t e = 0; e < events.size(); ++e) {
    if (events[e].op == DuOp::Marker) continue;
    const auto [it, inserted] =
        var_ids.try_emplace(events[e].name, static_cast<int>(var_names_.size()));
    if (inserted) var_names_.push_back(events[e].name);
    var_of_[e] = it->second;
  }
  defs_of_var_.resize(var_names_.size());
  uses_of_var_.resize(var_names_.size());
  std::vector<EventIndex> def_events;
  std::vector<int> fact_of(events.size(), -1);
  for (std::size_t e = 0; e < events.size(); ++e) {
    if (events[e].op == DuOp::Def) {
      fact_of[e] = static_cast<int>(def_events.size());
      def_events.push_back(static_cast<EventIndex>(e));
      defs_of_var_[var_of_[e]].push_back(static_cast<EventIndex>(e));
    } else if (events[e].op == DuOp::Use) {
      uses_of_var_[var_of_[e]].push_back(static_cast<EventIndex>(e));
    }
  }

  // Facts are def events; one pass per block applies the event sequence.
  const auto apply = [&](const DefUseItem::Event& ev, EventIndex e,
                         BitSet& state) {
    if (ev.op != DuOp::Def) return;
    // Weak update: an escaped/conditional def adds a possible value but
    // cannot retire the others.
    if ((ev.flags & pdb::du::kUnknown) == 0) {
      for (const EventIndex d : defs_of_var_[var_of_[e]])
        state.reset(static_cast<std::size_t>(fact_of[d]));
    }
    state.set(static_cast<std::size_t>(fact_of[e]));
  };
  const Transfer transfer = [&](int block, BitSet& state) {
    for (const EventIndex e : cfg.blocks()[block].events)
      apply(events[e], e, state);
  };
  const std::vector<BitSet> block_in =
      solveForward(cfg, def_events.size(), transfer);

  // Reconstruct per-use reaching sets by replaying each block once.
  reaching_.resize(events.size());
  reached_.resize(events.size());
  for (std::size_t b = 0; b < cfg.blocks().size(); ++b) {
    BitSet state = block_in[b];
    for (const EventIndex e : cfg.blocks()[b].events) {
      if (events[e].op == DuOp::Use) {
        const int var = var_of_[e];
        state.forEach([&](std::size_t fact) {
          const EventIndex d = def_events[fact];
          if (var_of_[d] != var) return;
          reaching_[e].push_back(d);
          reached_[d].push_back(static_cast<EventIndex>(e));
        });
      }
      apply(events[e], e, state);
    }
  }
  for (auto& v : reaching_) std::sort(v.begin(), v.end());
  for (auto& v : reached_) std::sort(v.begin(), v.end());
}

const std::vector<EventIndex>& ReachingDefs::defsReaching(
    EventIndex use_event) const {
  return use_event < reaching_.size() ? reaching_[use_event] : kEmpty;
}

const std::vector<EventIndex>& ReachingDefs::usesReached(
    EventIndex def_event) const {
  return def_event < reached_.size() ? reached_[def_event] : kEmpty;
}

}  // namespace pdt::analysis::dataflow
