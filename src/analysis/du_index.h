// DefUseIndex: the shared def-use scaffolding every du consumer used to
// rebuild privately. pdbduct's World, the du rules' DuWorld, and pdbd's
// defuse verb all need the same three things over a database: the
// file/routine id resolution for rendering positions and owning
// routines, and — per du stream — the CFG-lite plus its reaching-defs
// solution. Building the CFG and solving reaching definitions per rule
// per stream (three rules → three solves each) was the single biggest
// repeated cost in pdbcheck's du pass; here each stream is built and
// solved exactly once and shared read-only.
//
// Immutable after build(); safe to share across the checker's rule
// worker threads and pdbd's concurrent client connections.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/dataflow.h"
#include "ductape/ductape.h"

namespace pdt::analysis {

class DefUseIndex {
 public:
  /// One du stream with its flow analysis prebuilt. `rd` is null when
  /// the CFG is irregular (goto/label/try) — flow-sensitive consumers
  /// skip those streams.
  struct Stream {
    const pdb::DefUseItem* item = nullptr;
    dataflow::Cfg cfg;
    std::unique_ptr<const dataflow::ReachingDefs> rd;
  };

  /// Builds over a database whose object graph supplies the routine
  /// names. The index borrows `pdb`; it must outlive the result.
  [[nodiscard]] static std::shared_ptr<const DefUseIndex> build(
      const ductape::PDB& pdb);

  /// One entry per du item, in section order.
  [[nodiscard]] const std::vector<Stream>& streams() const {
    return streams_;
  }

  [[nodiscard]] const ductape::pdbFile* file(std::uint32_t id) const;
  [[nodiscard]] const ductape::pdbRoutine* routine(std::uint32_t id) const;

  /// Diagnostic location of a stream position (rules' reporting form).
  [[nodiscard]] ductape::pdbLoc loc(const pdb::Pos& pos) const;

  /// "file:line:col" with "<generated>" / "<unknown file>" fallbacks —
  /// pdbduct's rendering form.
  [[nodiscard]] std::string posText(const pdb::Pos& pos) const;

  /// Qualified routine name, "<unknown routine>" when unresolvable.
  [[nodiscard]] std::string routineName(std::uint32_t id) const;

  /// True when the routine's plain or qualified name equals `name`.
  [[nodiscard]] bool routineMatches(std::uint32_t id,
                                    const std::string& name) const;

 private:
  std::unordered_map<std::uint32_t, const ductape::pdbFile*> files_;
  std::unordered_map<std::uint32_t, const ductape::pdbRoutine*> routines_;
  std::vector<Stream> streams_;
};

}  // namespace pdt::analysis
