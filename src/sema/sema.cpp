#include "sema/sema.h"

#include <algorithm>
#include <cassert>

#include "support/trace.h"

namespace pdt::sema {

std::vector<ast::Decl*> Scope::find(std::string_view name) const {
  std::vector<ast::Decl*> out;
  const auto [lo, hi] = names_.equal_range(std::string(name));
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

Sema::Sema(ast::AstContext& ctx, SourceManager& sm, DiagnosticEngine& diags,
           SemaOptions options)
    : ctx_(ctx), sm_(sm), diags_(diags), options_(options) {
  pushScope(ScopeKind::TranslationUnit, ctx_.translationUnit());
}

Sema::~Sema() = default;

Scope* Sema::pushScope(ScopeKind kind, ast::DeclContext* entity) {
  Scope* parent = scopes_.empty() ? nullptr : scopes_.back().get();
  scopes_.push_back(std::make_unique<Scope>(kind, entity, parent));
  return scopes_.back().get();
}

void Sema::popScope() {
  assert(scopes_.size() > 1 && "cannot pop the translation-unit scope");
  scopes_.pop_back();
}

ast::DeclContext* Sema::currentContext() const {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    if ((*it)->entity() != nullptr) return (*it)->entity();
  }
  return nullptr;
}

ast::ClassDecl* Sema::currentClass() const {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    if ((*it)->entity() != nullptr) {
      if (auto* cls = (*it)->entity()->asDecl()->as<ast::ClassDecl>()) return cls;
    }
  }
  return nullptr;
}

void Sema::declare(ast::Decl* d) {
  Scope* scope = scopes_.back().get();
  // Constructors are never found by ordinary name lookup (the class name
  // inside its own scope is the injected-class-name, not the ctor set).
  const auto* fn = d->as<ast::FunctionDecl>();
  const bool is_ctor = fn != nullptr && fn->fkind == ast::FunctionKind::Constructor;
  if (!d->name().empty() && !is_ctor) scope->declare(d->name(), d);
  // Attach to the innermost entity-backed scope (names declared in block
  // scopes stay local; entities parent to namespace/class/TU).
  ast::DeclContext* ctx = scope->entity();
  if (ctx == nullptr &&
      (scope->kind() == ScopeKind::Function || scope->kind() == ScopeKind::Block ||
       scope->kind() == ScopeKind::TemplateParams)) {
    d->setParent(nullptr);
    return;  // locals are owned by their function's statements
  }
  if (ctx == nullptr) ctx = currentContext();
  if (ctx != nullptr) {
    d->setParent(ctx);
    ctx->addChild(d);
  }
}

void Sema::declareName(std::string_view name, ast::Decl* d) {
  scopes_.back()->declare(name, d);
}

void Sema::declareInEnclosing(ast::Decl* d) {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    Scope& scope = **it;
    if (scope.entity() == nullptr) continue;
    if (!d->name().empty()) scope.declare(d->name(), d);
    d->setParent(scope.entity());
    scope.entity()->addChild(d);
    return;
  }
}

std::vector<ast::Decl*> Sema::lookupUnqualified(std::string_view name) const {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    const Scope& scope = **it;
    std::vector<ast::Decl*> found = scope.find(name);
    // Class scopes see inherited members too.
    if (found.empty() && scope.entity() != nullptr) {
      if (const auto* cls = scope.entity()->asDecl()->as<ast::ClassDecl>()) {
        found = lookupInClass(cls, name);
      }
    }
    // using-directives make namespace members visible at this level.
    if (found.empty()) {
      for (const ast::NamespaceDecl* ns : scope.usingNamespaces()) {
        auto in_ns = lookupInContext(ns, name);
        found.insert(found.end(), in_ns.begin(), in_ns.end());
      }
    }
    if (!found.empty()) return found;
  }
  return {};
}

std::vector<ast::Decl*> Sema::lookupInClass(const ast::ClassDecl* cls,
                                            std::string_view name) {
  std::vector<ast::Decl*> found = cls->lookup(name);
  // Ordinary lookup never yields constructors.
  std::erase_if(found, [](const ast::Decl* d) {
    const auto* fn = d->as<ast::FunctionDecl>();
    return fn != nullptr && fn->fkind == ast::FunctionKind::Constructor;
  });
  if (!found.empty()) return found;
  for (const ast::BaseSpecifier& base : cls->bases) {
    if (base.base == nullptr) continue;
    found = lookupInClass(base.base, name);
    if (!found.empty()) return found;
  }
  return {};
}

std::vector<ast::Decl*> Sema::lookupInContext(const ast::DeclContext* ctx,
                                              std::string_view name) {
  if (ctx == nullptr) return {};
  if (const auto* cls = ctx->asDecl()->as<ast::ClassDecl>()) {
    return lookupInClass(cls, name);
  }
  return ctx->lookup(name);
}

bool Sema::isTypeName(std::string_view name) const {
  for (ast::Decl* d : lookupUnqualified(name)) {
    switch (d->kind()) {
      case ast::DeclKind::Class:
      case ast::DeclKind::Enum:
      case ast::DeclKind::Typedef:
        return true;
      case ast::DeclKind::TemplateParam:
        return d->as<ast::TemplateParamDecl>()->param_kind ==
               ast::TemplateParamDecl::Kind::Type;
      case ast::DeclKind::Template: {
        const auto k = d->as<ast::TemplateDecl>()->tkind;
        return k == ast::TemplateKind::Class || k == ast::TemplateKind::Alias;
      }
      default:
        break;
    }
  }
  return false;
}

bool Sema::isClassTemplateName(std::string_view name) const {
  for (ast::Decl* d : lookupUnqualified(name)) {
    if (const auto* td = d->as<ast::TemplateDecl>()) {
      if (td->tkind == ast::TemplateKind::Class) return true;
    }
  }
  return false;
}

void Sema::noteUsed(ast::FunctionDecl* fn) {
  if (fn == nullptr) return;
  use_worklist_.push_back(fn);
}

void Sema::finalize() {
  // Resolve every body parsed so far; resolution enqueues uses, uses may
  // instantiate bodies, which need resolution in turn — iterate to fixpoint.
  std::size_t guard = 0;
  while (!pending_resolution_.empty() || !use_worklist_.empty()) {
    if (++guard > 1000000) {
      diags_.error({}, "instantiation fixpoint did not converge");
      break;
    }
    if (!pending_resolution_.empty()) {
      ast::FunctionDecl* fn = pending_resolution_.back();
      pending_resolution_.pop_back();
      if (!resolved_[fn]) {
        resolved_[fn] = true;
        resolveFunctionBody(fn);
      }
      continue;
    }
    ast::FunctionDecl* used = use_worklist_.back();
    use_worklist_.pop_back();
    instantiateBodyIfNeeded(used);
  }
  // Bodies still pending after the fixpoint were never used — the savings
  // the paper's "used" instantiation mode is about (§2).
  trace::count(trace::Counter::SemaBodiesSkipped, pending_bodies_.size());
}

}  // namespace pdt::sema
