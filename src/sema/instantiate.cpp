// Template instantiation engine — the paper's central technical focus.
//
// Reproduces EDG's "used" instantiation mode (paper §2): naming Stack<int>
// instantiates the class and its member *declarations*; a member function
// *body* is instantiated only when the member is used, driven by the
// worklist in Sema::finalize(). Every instantiated entity is linked to the
// template it came from so the IL Analyzer can emit rtempl/ctempl.
#include <cassert>
#include <unordered_map>

#include "ast/walk.h"
#include "sema/sema.h"
#include "support/trace.h"

namespace pdt::sema {
namespace {

std::string instantiationName(const ast::TemplateDecl* td,
                              const std::vector<const ast::Type*>& args) {
  std::string name = td->name() + "<";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) name += ", ";
    name += args[i]->spelling();
  }
  if (name.ends_with('>')) name += ' ';  // avoid '>>' in "Stack<vector<int> >"
  return name + ">";
}

/// Deep-clones a statement/expression tree, applying `substType` to every
/// embedded type and cloning local VarDecls. Resolved decl pointers are
/// cleared: the resolution pass re-binds them in the instantiation context.
class BodyCloner {
 public:
  BodyCloner(ast::AstContext& ctx,
             const std::function<const ast::Type*(const ast::Type*)>& subst)
      : ctx_(ctx), subst_(subst) {}

  ast::Stmt* clone(const ast::Stmt* s) {
    if (s == nullptr) return nullptr;
    ast::Stmt* out = cloneImpl(s);
    out->setExtent(s->extent());
    return out;
  }

  ast::Expr* cloneExpr(const ast::Expr* e) {
    return e == nullptr ? nullptr : static_cast<ast::Expr*>(clone(e));
  }

  ast::VarDecl* cloneVar(const ast::VarDecl* v) {
    auto* out = ctx_.create<ast::VarDecl>();
    out->setName(v->name());
    out->setLocation(v->location());
    out->setHeaderExtent(v->headerExtent());
    out->type = subst_(v->type);
    out->storage = v->storage;
    out->init = cloneExpr(v->init);
    for (const ast::Expr* a : v->ctor_args) out->ctor_args.push_back(cloneExpr(a));
    return out;
  }

 private:
  template <typename T>
  T* make() {
    return ctx_.create<T>();
  }

  ast::Stmt* cloneImpl(const ast::Stmt* s) {
    using namespace ast;
    switch (s->kind()) {
      case StmtKind::Compound: {
        auto* out = make<CompoundStmt>();
        for (const Stmt* c : s->as<CompoundStmt>()->body) out->body.push_back(clone(c));
        return out;
      }
      case StmtKind::If: {
        const auto* n = s->as<IfStmt>();
        auto* out = make<IfStmt>();
        out->condition = cloneExpr(n->condition);
        out->then_branch = clone(n->then_branch);
        out->else_branch = clone(n->else_branch);
        return out;
      }
      case StmtKind::While: {
        const auto* n = s->as<WhileStmt>();
        auto* out = make<WhileStmt>();
        out->condition = cloneExpr(n->condition);
        out->body = clone(n->body);
        return out;
      }
      case StmtKind::DoWhile: {
        const auto* n = s->as<DoWhileStmt>();
        auto* out = make<DoWhileStmt>();
        out->body = clone(n->body);
        out->condition = cloneExpr(n->condition);
        return out;
      }
      case StmtKind::For: {
        const auto* n = s->as<ForStmt>();
        auto* out = make<ForStmt>();
        out->init = clone(n->init);
        out->condition = cloneExpr(n->condition);
        out->increment = cloneExpr(n->increment);
        out->body = clone(n->body);
        return out;
      }
      case StmtKind::Switch: {
        const auto* n = s->as<SwitchStmt>();
        auto* out = make<SwitchStmt>();
        out->condition = cloneExpr(n->condition);
        out->body = clone(n->body);
        return out;
      }
      case StmtKind::Case: {
        const auto* n = s->as<CaseStmt>();
        auto* out = make<CaseStmt>();
        out->value = cloneExpr(n->value);
        out->body = clone(n->body);
        return out;
      }
      case StmtKind::Default: {
        auto* out = make<DefaultStmt>();
        out->body = clone(s->as<DefaultStmt>()->body);
        return out;
      }
      case StmtKind::Return: {
        auto* out = make<ReturnStmt>();
        out->value = cloneExpr(s->as<ReturnStmt>()->value);
        return out;
      }
      case StmtKind::ExprStatement: {
        auto* out = make<ExprStmt>();
        out->expr = cloneExpr(s->as<ExprStmt>()->expr);
        return out;
      }
      case StmtKind::DeclStatement: {
        auto* out = make<DeclStmt>();
        for (const VarDecl* v : s->as<DeclStmt>()->vars)
          out->vars.push_back(cloneVar(v));
        return out;
      }
      case StmtKind::Break:
        return make<BreakStmt>();
      case StmtKind::Continue:
        return make<ContinueStmt>();
      case StmtKind::Null:
        return make<NullStmt>();
      case StmtKind::Goto: {
        auto* out = make<GotoStmt>();
        out->label = s->as<GotoStmt>()->label;
        return out;
      }
      case StmtKind::Label: {
        const auto* n = s->as<LabelStmt>();
        auto* out = make<LabelStmt>();
        out->label = n->label;
        out->body = clone(n->body);
        return out;
      }
      case StmtKind::Try: {
        const auto* n = s->as<TryStmt>();
        auto* out = make<TryStmt>();
        out->body = clone(n->body);
        for (const auto& h : n->handlers) {
          TryStmt::Handler hh;
          hh.exception_type = h.exception_type ? subst_(h.exception_type) : nullptr;
          hh.var = h.var ? cloneVar(h.var) : nullptr;
          hh.body = clone(h.body);
          out->handlers.push_back(hh);
        }
        return out;
      }
      case StmtKind::IntLit: {
        const auto* n = s->as<IntLitExpr>();
        auto* out = make<IntLitExpr>();
        out->value = n->value;
        out->spelling = n->spelling;
        return out;
      }
      case StmtKind::FloatLit: {
        const auto* n = s->as<FloatLitExpr>();
        auto* out = make<FloatLitExpr>();
        out->value = n->value;
        out->spelling = n->spelling;
        return out;
      }
      case StmtKind::CharLit: {
        auto* out = make<CharLitExpr>();
        out->spelling = s->as<CharLitExpr>()->spelling;
        return out;
      }
      case StmtKind::StringLit: {
        auto* out = make<StringLitExpr>();
        out->spelling = s->as<StringLitExpr>()->spelling;
        return out;
      }
      case StmtKind::BoolLit: {
        auto* out = make<BoolLitExpr>();
        out->value = s->as<BoolLitExpr>()->value;
        return out;
      }
      case StmtKind::This:
        return make<ThisExpr>();
      case StmtKind::DeclRef: {
        const auto* n = s->as<DeclRefExpr>();
        auto* out = make<DeclRefExpr>();
        out->name = n->name;  // re-resolved in the instantiation context
        if (n->qualifier_type != nullptr) out->qualifier_type = subst_(n->qualifier_type);
        out->qualifier_ns = n->qualifier_ns;
        for (const Type* t : n->explicit_targs) out->explicit_targs.push_back(subst_(t));
        return out;
      }
      case StmtKind::Member: {
        const auto* n = s->as<MemberExpr>();
        auto* out = make<MemberExpr>();
        out->base = cloneExpr(n->base);
        out->member = n->member;
        out->is_arrow = n->is_arrow;
        return out;
      }
      case StmtKind::Call: {
        const auto* n = s->as<CallExpr>();
        auto* out = make<CallExpr>();
        out->callee = cloneExpr(n->callee);
        for (const Expr* a : n->args) out->args.push_back(cloneExpr(a));
        out->call_location = n->call_location;
        return out;
      }
      case StmtKind::Unary: {
        const auto* n = s->as<UnaryExpr>();
        auto* out = make<UnaryExpr>();
        out->op = n->op;
        out->is_postfix = n->is_postfix;
        out->operand = cloneExpr(n->operand);
        return out;
      }
      case StmtKind::Binary: {
        const auto* n = s->as<BinaryExpr>();
        auto* out = make<BinaryExpr>();
        out->op = n->op;
        out->lhs = cloneExpr(n->lhs);
        out->rhs = cloneExpr(n->rhs);
        return out;
      }
      case StmtKind::Conditional: {
        const auto* n = s->as<ConditionalExpr>();
        auto* out = make<ConditionalExpr>();
        out->condition = cloneExpr(n->condition);
        out->true_value = cloneExpr(n->true_value);
        out->false_value = cloneExpr(n->false_value);
        return out;
      }
      case StmtKind::Cast: {
        const auto* n = s->as<CastExpr>();
        auto* out = make<CastExpr>();
        out->cast_kind = n->cast_kind;
        out->target = n->target ? subst_(n->target) : nullptr;
        out->operand = cloneExpr(n->operand);
        return out;
      }
      case StmtKind::New: {
        const auto* n = s->as<NewExpr>();
        auto* out = make<NewExpr>();
        out->allocated = n->allocated ? subst_(n->allocated) : nullptr;
        out->is_array = n->is_array;
        for (const Expr* a : n->args) out->args.push_back(cloneExpr(a));
        return out;
      }
      case StmtKind::Delete: {
        const auto* n = s->as<DeleteExpr>();
        auto* out = make<DeleteExpr>();
        out->operand = cloneExpr(n->operand);
        out->is_array = n->is_array;
        return out;
      }
      case StmtKind::Index: {
        const auto* n = s->as<IndexExpr>();
        auto* out = make<IndexExpr>();
        out->base = cloneExpr(n->base);
        out->index = cloneExpr(n->index);
        return out;
      }
      case StmtKind::Construct: {
        const auto* n = s->as<ConstructExpr>();
        auto* out = make<ConstructExpr>();
        out->constructed = n->constructed ? subst_(n->constructed) : nullptr;
        for (const Expr* a : n->args) out->args.push_back(cloneExpr(a));
        return out;
      }
      case StmtKind::Throw: {
        auto* out = make<ThrowExpr>();
        out->operand = cloneExpr(s->as<ThrowExpr>()->operand);
        return out;
      }
      case StmtKind::SizeOf: {
        const auto* n = s->as<SizeOfExpr>();
        auto* out = make<SizeOfExpr>();
        out->type_operand = n->type_operand ? subst_(n->type_operand) : nullptr;
        out->expr_operand = cloneExpr(n->expr_operand);
        return out;
      }
      case StmtKind::Comma: {
        const auto* n = s->as<CommaExpr>();
        auto* out = make<CommaExpr>();
        out->lhs = cloneExpr(n->lhs);
        out->rhs = cloneExpr(n->rhs);
        return out;
      }
    }
    assert(false && "unhandled statement kind in clone");
    return nullptr;
  }

  ast::AstContext& ctx_;
  const std::function<const ast::Type*(const ast::Type*)>& subst_;
};

}  // namespace

const ast::Type* Sema::substituteType(const ast::Type* type,
                                      const std::vector<const ast::Type*>& args) {
  using namespace ast;
  if (type == nullptr || !type->isDependent()) return type;
  switch (type->kind()) {
    case TypeKind::TemplateParam: {
      const auto* tp = type->as<TemplateParamType>();
      if (tp->index() < args.size()) return args[tp->index()];
      return type;  // unbound parameter (deeper nesting): leave as-is
    }
    case TypeKind::Pointer:
      return ctx_.pointerTo(substituteType(type->as<PointerType>()->pointee(), args));
    case TypeKind::Reference:
      return ctx_.referenceTo(substituteType(type->as<ReferenceType>()->referee(), args));
    case TypeKind::Qualified: {
      const auto* q = type->as<QualifiedType>();
      return ctx_.qualified(substituteType(q->base(), args), q->isConst(),
                            q->isVolatile());
    }
    case TypeKind::Array: {
      const auto* a = type->as<ArrayType>();
      return ctx_.arrayOf(substituteType(a->element(), args), a->size());
    }
    case TypeKind::Function: {
      const auto* f = type->as<FunctionType>();
      std::vector<const Type*> params;
      params.reserve(f->params().size());
      for (const Type* p : f->params()) params.push_back(substituteType(p, args));
      std::vector<const Type*> specs;
      specs.reserve(f->exceptionSpecs().size());
      for (const Type* e : f->exceptionSpecs()) specs.push_back(substituteType(e, args));
      return ctx_.functionType(substituteType(f->result(), args), std::move(params),
                               f->isConstMember(), f->hasEllipsis(), std::move(specs));
    }
    case TypeKind::Typedef:
      return substituteType(type->as<TypedefType>()->underlying(), args);
    case TypeKind::TemplateSpecialization: {
      const auto* ts = type->as<TemplateSpecializationType>();
      std::vector<const Type*> new_args;
      new_args.reserve(ts->args().size());
      bool still_dependent = false;
      for (const Type* a : ts->args()) {
        const Type* s = substituteType(a, args);
        still_dependent = still_dependent || s->isDependent();
        new_args.push_back(s);
      }
      if (still_dependent) return ctx_.templateSpecType(ts->primary(), new_args);
      auto* primary = const_cast<TemplateDecl*>(ts->primary());
      if (primary->tkind == TemplateKind::Alias) {
        // Alias templates resolve by substituting into the pattern's
        // underlying type; they never instantiate a decl.
        if (const auto* pattern = primary->pattern->as<TypedefDecl>())
          return substituteType(pattern->underlying, new_args);
        return type;
      }
      // Fully concrete: nested instantiation (e.g. Stack<vector<int>>).
      ClassDecl* inst = instantiateClassTemplate(primary, new_args, {});
      if (inst == nullptr) return type;
      return ctx_.classType(inst);
    }
    case TypeKind::Builtin:
    case TypeKind::Class:
    case TypeKind::Enum:
      return type;
  }
  return type;
}

ast::ClassDecl* Sema::instantiateClassTemplate(
    ast::TemplateDecl* td, const std::vector<const ast::Type*>& args,
    SourceLocation use_loc) {
  using namespace ast;
  if (td == nullptr) return nullptr;
  // Apply default template arguments for trailing missing positions.
  std::vector<const Type*> full_args = args;
  if (full_args.size() < td->params.size()) {
    for (std::size_t i = full_args.size(); i < td->params.size(); ++i) {
      const Type* def = td->params[i]->default_type;
      if (def == nullptr) break;
      full_args.push_back(substituteType(def, full_args));
    }
  }
  if (full_args.size() != td->params.size()) {
    diags_.error(use_loc, "wrong number of template arguments for '" + td->name() +
                              "': expected " + std::to_string(td->params.size()) +
                              ", got " + std::to_string(full_args.size()));
    return nullptr;
  }

  // Explicit (full) specializations take precedence over the primary.
  if (Decl* spec = td->findSpecialization(full_args)) {
    return spec->as<ClassDecl>();
  }
  if (Decl* existing = td->findInstantiation(full_args)) {
    return existing->as<ClassDecl>();
  }
  auto* pattern = td->pattern != nullptr ? td->pattern->as<ClassDecl>() : nullptr;
  if (pattern == nullptr || !pattern->is_complete) {
    diags_.error(use_loc,
                 "cannot instantiate incomplete class template '" + td->name() + "'");
    return nullptr;
  }
  if (++instantiation_depth_ > 64) {
    --instantiation_depth_;
    diags_.error(use_loc, "template instantiation depth limit exceeded for '" +
                              td->name() + "'");
    return nullptr;
  }

  PDT_TRACE_SCOPE("sema.instantiate", td->name());
  trace::count(trace::Counter::SemaClassInstantiations);
  trace::countKey("sema.instantiations.by_template", td->name());

  auto* inst = ctx_.create<ClassDecl>();
  inst->setName(instantiationName(td, full_args));
  // Like EDG's IL (paper Fig. 3, cl#8): the instantiation's positions are
  // those of the template's class definition.
  inst->setLocation(pattern->location());
  inst->setHeaderExtent(pattern->headerExtent());
  inst->setBodyExtent(pattern->bodyExtent());
  inst->setAccess(pattern->access());
  inst->tag = pattern->tag;
  inst->is_complete = true;
  inst->instantiated_from = td;
  inst->template_args = full_args;
  if (td->parent() != nullptr) {
    inst->setParent(td->parent());
    td->parent()->addChild(inst);
  }
  // Record the instantiation BEFORE members: members may mention the
  // injected class name (Stack<Object> -> Stack<int>) recursively.
  td->instantiations.push_back({full_args, inst});

  const auto subst = [&](const Type* t) { return substituteType(t, full_args); };

  // Bases.
  for (const BaseSpecifier& base : pattern->bases) {
    BaseSpecifier b = base;
    if (base.dependent_type != nullptr) {
      const Type* resolved = subst(base.dependent_type);
      if (const auto* ct = canonical(resolved)->as<ClassType>()) {
        b.base = ct->decl();
        b.dependent_type = nullptr;
      }
    }
    inst->bases.push_back(b);
  }
  for (const FriendEntry& f : pattern->friends) inst->friends.push_back(f);

  // Member declarations.
  for (Decl* member : pattern->children()) {
    if (auto* fn = member->as<FunctionDecl>()) {
      auto* mi = ctx_.create<FunctionDecl>();
      mi->setName(fn->name());
      mi->setLocation(fn->location());
      mi->setHeaderExtent(fn->headerExtent());
      mi->setBodyExtent(fn->bodyExtent());
      mi->setAccess(fn->access());
      mi->fkind = fn->fkind;
      mi->return_type = subst(fn->return_type);
      for (const ParamDecl* p : fn->params) {
        auto* pi = ctx_.create<ParamDecl>();
        pi->setName(p->name());
        pi->setLocation(p->location());
        pi->type = subst(p->type);
        pi->default_arg = p->default_arg;  // shared: defaults are re-resolved
        mi->params.push_back(pi);
      }
      mi->is_virtual = fn->is_virtual;
      mi->is_pure_virtual = fn->is_pure_virtual;
      mi->is_static = fn->is_static;
      mi->is_const = fn->is_const;
      mi->is_inline = fn->is_inline;
      mi->is_explicit = fn->is_explicit;
      mi->has_ellipsis = fn->has_ellipsis;
      mi->storage = fn->storage;
      mi->linkage = fn->linkage;
      mi->has_exception_spec = fn->has_exception_spec;
      for (const Type* e : fn->exception_specs) mi->exception_specs.push_back(subst(e));
      {
        std::vector<const Type*> ptypes;
        ptypes.reserve(mi->params.size());
        for (const ParamDecl* p : mi->params) ptypes.push_back(p->type);
        mi->signature = ctx_.functionType(mi->return_type, std::move(ptypes),
                                          mi->is_const, mi->has_ellipsis,
                                          mi->exception_specs);
      }
      mi->instantiated_from = fn->describing_template;
      mi->template_args = full_args;
      mi->setParent(inst);
      inst->addChild(mi);
      if (fn->body != nullptr) {
        pending_bodies_[mi] = {fn, full_args, inst};
        if (!options_.used_mode) noteUsed(mi);
      }
    } else if (auto* var = member->as<VarDecl>()) {
      auto* vi = ctx_.create<VarDecl>();
      vi->setName(var->name());
      vi->setLocation(var->location());
      vi->setAccess(var->access());
      vi->type = subst(var->type);
      vi->storage = var->storage;
      vi->instantiated_from = var->describing_template;
      vi->template_args = full_args;
      vi->setParent(inst);
      inst->addChild(vi);
    } else if (auto* tdf = member->as<TypedefDecl>()) {
      auto* ti = ctx_.create<TypedefDecl>();
      ti->setName(tdf->name());
      ti->setLocation(tdf->location());
      ti->setAccess(tdf->access());
      ti->underlying = subst(tdf->underlying);
      ti->setParent(inst);
      inst->addChild(ti);
    } else if (auto* en = member->as<EnumDecl>()) {
      // Enums cannot be dependent in the subset: share the node.
      inst->addChild(en);
    } else if (auto* nested = member->as<ClassDecl>()) {
      // Nested classes are exposed declaration-only in instantiations.
      inst->addChild(nested);
    }
  }

  --instantiation_depth_;
  return inst;
}

ast::FunctionDecl* Sema::instantiateFunctionTemplate(
    ast::TemplateDecl* td, const std::vector<const ast::Type*>& args,
    SourceLocation use_loc) {
  using namespace ast;
  if (td == nullptr) return nullptr;
  if (args.size() != td->params.size()) {
    diags_.error(use_loc, "wrong number of template arguments for '" + td->name() +
                              "'");
    return nullptr;
  }
  if (Decl* spec = td->findSpecialization(args)) return spec->as<FunctionDecl>();
  if (Decl* existing = td->findInstantiation(args)) {
    return existing->as<FunctionDecl>();
  }
  auto* pattern = td->pattern != nullptr ? td->pattern->as<FunctionDecl>() : nullptr;
  if (pattern == nullptr) {
    diags_.error(use_loc, "cannot instantiate function template '" + td->name() + "'");
    return nullptr;
  }

  PDT_TRACE_SCOPE("sema.instantiate", td->name());
  trace::count(trace::Counter::SemaFuncInstantiations);
  trace::countKey("sema.instantiations.by_template", td->name());

  const auto subst = [&](const Type* t) { return substituteType(t, args); };

  auto* fi = ctx_.create<FunctionDecl>();
  fi->setName(pattern->name());
  fi->setLocation(pattern->location());
  fi->setHeaderExtent(pattern->headerExtent());
  fi->setBodyExtent(pattern->bodyExtent());
  fi->setAccess(pattern->access());
  fi->fkind = pattern->fkind;
  fi->return_type = subst(pattern->return_type);
  for (const ParamDecl* p : pattern->params) {
    auto* pi = ctx_.create<ParamDecl>();
    pi->setName(p->name());
    pi->setLocation(p->location());
    pi->type = subst(p->type);
    pi->default_arg = p->default_arg;
    fi->params.push_back(pi);
  }
  fi->is_static = pattern->is_static;
  fi->is_inline = pattern->is_inline;
  fi->is_const = pattern->is_const;
  fi->is_virtual = pattern->is_virtual;
  fi->has_ellipsis = pattern->has_ellipsis;
  fi->storage = pattern->storage;
  fi->linkage = pattern->linkage;
  {
    std::vector<const Type*> ptypes;
    ptypes.reserve(fi->params.size());
    for (const ParamDecl* p : fi->params) ptypes.push_back(p->type);
    fi->signature = ctx_.functionType(fi->return_type, std::move(ptypes),
                                      fi->is_const, fi->has_ellipsis, {});
  }
  fi->instantiated_from = td;
  fi->template_args = args;
  if (td->parent() != nullptr) {
    fi->setParent(td->parent());
    td->parent()->addChild(fi);
  }
  td->instantiations.push_back({args, fi});
  if (pattern->body != nullptr) {
    pending_bodies_[fi] = {pattern, args, nullptr};
    noteUsed(fi);  // a function template is instantiated because it is used
  }
  return fi;
}

void Sema::instantiateBodyIfNeeded(ast::FunctionDecl* fn) {
  const auto it = pending_bodies_.find(fn);
  if (it == pending_bodies_.end()) return;
  const PendingBody pending = it->second;
  pending_bodies_.erase(it);

  const auto subst = [this, &pending](const ast::Type* t) {
    return substituteType(t, pending.args);
  };
  const std::function<const ast::Type*(const ast::Type*)> subst_fn = subst;
  BodyCloner cloner(ctx_, subst_fn);
  fn->body = cloner.clone(pending.pattern->body);
  fn->is_defined = true;
  for (const auto& init : pending.pattern->ctor_inits) {
    ast::FunctionDecl::CtorInit ci;
    ci.name = init.name;
    ci.location = init.location;
    for (const ast::Expr* a : init.args) ci.args.push_back(cloner.cloneExpr(a));
    fn->ctor_inits.push_back(std::move(ci));
  }
  ++instantiated_bodies_;
  trace::count(trace::Counter::SemaBodiesInstantiated);
  queueForResolution(fn);
}

}  // namespace pdt::sema
