// Semantic analysis for PDT-C++: scope management and name lookup used by
// the parser while it builds the IL, plus the post-parse passes — body
// resolution (static call graph) and the template instantiation engine
// with EDG-style "used" mode semantics (paper §2/§3.1).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ast/context.h"
#include "ast/decl.h"
#include "ast/stmt.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"

namespace pdt::sema {

enum class ScopeKind : std::uint8_t {
  TranslationUnit,
  Namespace,
  Class,
  TemplateParams,
  Function,
  Block,
};

/// One lexical scope. Scopes for namespaces/classes are backed by the
/// corresponding DeclContext; template-param/function/block scopes hold
/// names only for the duration of parsing/resolution.
class Scope {
 public:
  Scope(ScopeKind kind, ast::DeclContext* entity, Scope* parent)
      : kind_(kind), entity_(entity), parent_(parent) {}

  [[nodiscard]] ScopeKind kind() const { return kind_; }
  [[nodiscard]] ast::DeclContext* entity() const { return entity_; }
  [[nodiscard]] Scope* parent() const { return parent_; }

  void declare(std::string_view name, ast::Decl* d) {
    names_.emplace(std::string(name), d);
  }
  [[nodiscard]] std::vector<ast::Decl*> find(std::string_view name) const;

  void addUsingNamespace(ast::NamespaceDecl* ns) { using_.push_back(ns); }
  [[nodiscard]] const std::vector<ast::NamespaceDecl*>& usingNamespaces() const {
    return using_;
  }

 private:
  ScopeKind kind_;
  ast::DeclContext* entity_;
  Scope* parent_;
  std::unordered_multimap<std::string, ast::Decl*> names_;
  std::vector<ast::NamespaceDecl*> using_;
};

/// Options controlling instantiation behaviour; used by ablation benches.
struct SemaOptions {
  /// EDG "used" instantiation mode (the paper's choice): member function
  /// bodies are instantiated only when used. When false, instantiating a
  /// class instantiates every member body ("instantiate-all").
  bool used_mode = true;
  /// The paper's proposed EDG fix: carry template IDs into specializations
  /// so their originating template is recoverable (off reproduces the
  /// paper's documented limitation).
  bool record_specialization_origin = false;
};

class Sema {
 public:
  Sema(ast::AstContext& ctx, SourceManager& sm, DiagnosticEngine& diags,
       SemaOptions options = {});
  ~Sema();

  Sema(const Sema&) = delete;
  Sema& operator=(const Sema&) = delete;

  [[nodiscard]] ast::AstContext& context() { return ctx_; }
  [[nodiscard]] DiagnosticEngine& diags() { return diags_; }
  [[nodiscard]] const SemaOptions& options() const { return options_; }

  // -- scope stack (parser interface) ------------------------------------
  Scope* pushScope(ScopeKind kind, ast::DeclContext* entity);
  void popScope();
  [[nodiscard]] Scope* currentScope() { return scopes_.back().get(); }
  [[nodiscard]] ast::DeclContext* currentContext() const;
  /// The innermost enclosing class, if any (for member function parsing).
  [[nodiscard]] ast::ClassDecl* currentClass() const;

  /// Registers `d` in the current scope and, when the scope is backed by a
  /// DeclContext, parents it there too.
  void declare(ast::Decl* d);
  /// Registers a name only (no context attachment) — template params, etc.
  void declareName(std::string_view name, ast::Decl* d);

  /// Declares into the innermost entity-backed (namespace/class/TU) scope,
  /// skipping template-parameter/function/block scopes. Used for template
  /// declarations, which live in the scope enclosing their parameter list.
  void declareInEnclosing(ast::Decl* d);

  // -- lookup -------------------------------------------------------------
  [[nodiscard]] std::vector<ast::Decl*> lookupUnqualified(std::string_view name) const;
  /// Lookup within one class, following base classes.
  [[nodiscard]] static std::vector<ast::Decl*> lookupInClass(
      const ast::ClassDecl* cls, std::string_view name);
  /// Lookup within a namespace or class context.
  [[nodiscard]] static std::vector<ast::Decl*> lookupInContext(
      const ast::DeclContext* ctx, std::string_view name);
  /// True when `name` currently names a type (class/enum/typedef/
  /// template-type-param) or a class template.
  [[nodiscard]] bool isTypeName(std::string_view name) const;
  [[nodiscard]] bool isClassTemplateName(std::string_view name) const;

  // -- template instantiation (engine in instantiate.cpp) ------------------
  /// Instantiates (or finds) Class<args>; in used mode member bodies stay
  /// uninstantiated until use. Returns null on failure (diagnosed).
  ast::ClassDecl* instantiateClassTemplate(ast::TemplateDecl* td,
                                           const std::vector<const ast::Type*>& args,
                                           SourceLocation use_loc);
  /// Instantiates (or finds) a function template for explicit `args`.
  ast::FunctionDecl* instantiateFunctionTemplate(
      ast::TemplateDecl* td, const std::vector<const ast::Type*>& args,
      SourceLocation use_loc);
  /// Substitutes template arguments into `type` (depth-0 parameters).
  const ast::Type* substituteType(const ast::Type* type,
                                  const std::vector<const ast::Type*>& args);

  /// Queue a member function for body instantiation (used mode).
  void noteUsed(ast::FunctionDecl* fn);

  /// Parser hook: schedule a freshly parsed body for the resolution pass.
  void queueForResolution(ast::FunctionDecl* fn) {
    pending_resolution_.push_back(fn);
  }

  // -- post-parse passes ----------------------------------------------------
  /// Resolves every parsed body (names, member calls, operator calls,
  /// ctor/dtor uses) and drives the used-mode instantiation worklist to a
  /// fixed point. Call once after the parser finishes.
  void finalize();

  /// Count of member-function bodies instantiated (ablation metric).
  [[nodiscard]] std::size_t instantiatedBodyCount() const {
    return instantiated_bodies_;
  }

 private:
  friend class BodyResolver;
  friend class TemplateInstantiator;

  void resolveFunctionBody(ast::FunctionDecl* fn);
  /// Instantiates the body of `fn` from its pattern, if it has one pending.
  void instantiateBodyIfNeeded(ast::FunctionDecl* fn);

  ast::AstContext& ctx_;
  SourceManager& sm_;
  DiagnosticEngine& diags_;
  SemaOptions options_;

  std::vector<std::unique_ptr<Scope>> scopes_;

  /// Worklist of functions whose bodies still need resolution.
  std::vector<ast::FunctionDecl*> pending_resolution_;
  /// Member functions of class instantiations awaiting body instantiation:
  /// instantiated decl -> (pattern function, template args).
  struct PendingBody {
    ast::FunctionDecl* pattern = nullptr;
    std::vector<const ast::Type*> args;
    ast::ClassDecl* owner = nullptr;  // instantiated class (null for free fns)
  };
  std::unordered_map<ast::FunctionDecl*, PendingBody> pending_bodies_;
  std::vector<ast::FunctionDecl*> use_worklist_;
  std::unordered_map<const ast::FunctionDecl*, bool> resolved_;
  std::size_t instantiated_bodies_ = 0;
  std::size_t instantiation_depth_ = 0;
};

}  // namespace pdt::sema
