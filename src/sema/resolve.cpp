// Post-parse body resolution: binds names, resolves member and operator
// calls (computing expression types bottom-up), marks every used template
// entity for instantiation (EDG "used" mode), and records the constructor
// and destructor calls implied by object lifetimes (paper §3.1).
#include <algorithm>
#include <unordered_map>

#include "ast/walk.h"
#include "sema/sema.h"

namespace pdt::sema {
namespace {

using namespace ast;

/// Resolution context for one function body.
class BodyResolver {
 public:
  BodyResolver(Sema& sema, FunctionDecl* fn)
      : sema_(sema), ctx_(sema.context()), fn_(fn) {}

  void run() {
    this_class_ = fn_->memberOf();
    pushLocalScope();
    for (ParamDecl* p : fn_->params) declareLocal(p->name(), p);
    resolveCtorInits();
    resolveStmt(fn_->body);
    popLocalScope();
  }

 private:
  // -- local scopes -------------------------------------------------------
  void pushLocalScope() { locals_.emplace_back(); }
  void popLocalScope() { locals_.pop_back(); }
  void declareLocal(const std::string& name, Decl* d) {
    if (!name.empty()) locals_.back()[name] = d;
  }
  [[nodiscard]] Decl* findLocal(const std::string& name) const {
    for (auto it = locals_.rbegin(); it != locals_.rend(); ++it) {
      if (const auto found = it->find(name); found != it->end())
        return found->second;
    }
    return nullptr;
  }

  // -- lexical lookup from the function's position -------------------------
  [[nodiscard]] std::vector<Decl*> lookupName(const std::string& name) const {
    if (Decl* local = findLocal(name)) return {local};
    if (this_class_ != nullptr) {
      auto found = Sema::lookupInClass(this_class_, name);
      if (!found.empty()) return found;
    }
    // Walk enclosing contexts: class -> namespace -> TU, honoring
    // using-directives recorded as children.
    const DeclContext* ctx =
        fn_->parent() != nullptr ? fn_->parent() : nullptr;
    while (ctx != nullptr) {
      auto found = Sema::lookupInContext(ctx, name);
      if (!found.empty()) return found;
      for (const Decl* child : ctx->children()) {
        if (const auto* ud = child->as<UsingDirectiveDecl>()) {
          if (ud->target != nullptr) {
            auto in_ns = Sema::lookupInContext(ud->target, name);
            if (!in_ns.empty()) return in_ns;
          }
        }
      }
      ctx = ctx->asDecl()->parent();
    }
    return {};
  }

  // -- overload resolution --------------------------------------------------
  /// Picks the best function from `candidates` for `arg_types`; resolves
  /// function templates by deduction. Simplified rules (DESIGN.md §3).
  FunctionDecl* pickOverload(const std::vector<Decl*>& candidates,
                             const std::vector<const Type*>& arg_types,
                             const std::vector<const Type*>& explicit_targs,
                             SourceLocation loc) {
    FunctionDecl* best = nullptr;
    int best_score = -1;
    for (Decl* cand : candidates) {
      FunctionDecl* fn = nullptr;
      if (auto* fd = cand->as<FunctionDecl>()) {
        fn = fd;
      } else if (auto* td = cand->as<TemplateDecl>()) {
        // Free function templates and member function templates are both
        // callable; class templates are not.
        if (td->tkind == TemplateKind::Class) continue;
        if (td->pattern == nullptr ||
            td->pattern->as<FunctionDecl>() == nullptr)
          continue;
        std::vector<const Type*> targs = explicit_targs;
        if (!deduceTemplateArgs(td, arg_types, targs)) continue;
        fn = sema_.instantiateFunctionTemplate(td, targs, loc);
        if (fn == nullptr) continue;
      } else {
        continue;
      }
      const int score = viabilityScore(fn, arg_types);
      if (score > best_score) {
        best_score = score;
        best = fn;
      }
    }
    return best;
  }

  /// -1 if not viable (arity); else count of exactly matching params.
  static int viabilityScore(const FunctionDecl* fn,
                            const std::vector<const Type*>& arg_types) {
    const std::size_t nargs = arg_types.size();
    std::size_t required = 0;
    for (const ParamDecl* p : fn->params) {
      if (p->default_arg == nullptr) ++required;
    }
    if (nargs < required) return -1;
    if (nargs > fn->params.size() && !fn->has_ellipsis) return -1;
    int score = 0;
    for (std::size_t i = 0; i < nargs && i < fn->params.size(); ++i) {
      if (arg_types[i] == nullptr || fn->params[i]->type == nullptr) continue;
      const Type* p = strippedForMemberAccess(fn->params[i]->type);
      const Type* a = strippedForMemberAccess(arg_types[i]);
      if (p == a) score += 2;
      // Small preference for same type family (both class, both arith).
      else if (p->kind() == a->kind())
        score += 1;
    }
    return score;
  }

  /// Deduces missing template arguments by matching parameter patterns
  /// against argument types. Returns false when deduction fails.
  bool deduceTemplateArgs(const TemplateDecl* td,
                          const std::vector<const Type*>& arg_types,
                          std::vector<const Type*>& targs) {
    const auto* pattern = td->pattern != nullptr
                              ? td->pattern->as<FunctionDecl>()
                              : nullptr;
    if (pattern == nullptr) return false;
    std::vector<const Type*> bound(td->params.size(), nullptr);
    for (std::size_t i = 0; i < targs.size() && i < bound.size(); ++i)
      bound[i] = targs[i];
    for (std::size_t i = 0; i < pattern->params.size() && i < arg_types.size();
         ++i) {
      if (arg_types[i] == nullptr) continue;
      if (!matchPattern(pattern->params[i]->type, arg_types[i], bound))
        return false;
    }
    for (std::size_t i = 0; i < bound.size(); ++i) {
      if (bound[i] == nullptr) {
        if (td->params[i]->default_type != nullptr) {
          bound[i] = td->params[i]->default_type;
        } else {
          return false;
        }
      }
    }
    targs = bound;
    return true;
  }

  /// Structural match of a dependent parameter type against a concrete
  /// argument type, binding template parameters.
  bool matchPattern(const Type* param, const Type* arg,
                    std::vector<const Type*>& bound) {
    if (param == nullptr || arg == nullptr) return true;
    // Strip references and top-level qualifiers from both sides.
    while (true) {
      if (const auto* r = param->as<ReferenceType>()) {
        param = r->referee();
        if (const auto* ra = arg->as<ReferenceType>()) arg = ra->referee();
        continue;
      }
      if (const auto* q = param->as<QualifiedType>()) {
        param = q->base();
        if (const auto* qa = arg->as<QualifiedType>()) arg = qa->base();
        continue;
      }
      if (const auto* qa = arg->as<QualifiedType>()) {
        arg = qa->base();
        continue;
      }
      break;
    }
    if (const auto* tp = param->as<TemplateParamType>()) {
      const Type* stripped = canonical(arg);
      if (tp->index() >= bound.size()) return false;
      if (bound[tp->index()] != nullptr) return bound[tp->index()] == stripped;
      bound[tp->index()] = stripped;
      return true;
    }
    if (!param->isDependent()) {
      return canonical(param) == canonical(arg);
    }
    if (const auto* pp = param->as<PointerType>()) {
      const auto* ap = canonical(arg)->as<PointerType>();
      return ap != nullptr && matchPattern(pp->pointee(), ap->pointee(), bound);
    }
    if (const auto* pa = param->as<ArrayType>()) {
      const auto* aa = canonical(arg)->as<ArrayType>();
      return aa != nullptr && matchPattern(pa->element(), aa->element(), bound);
    }
    if (const auto* ps = param->as<TemplateSpecializationType>()) {
      const auto* ac = canonical(arg)->as<ClassType>();
      if (ac == nullptr || ac->decl()->instantiated_from != ps->primary())
        return false;
      const auto& actual = ac->decl()->template_args;
      if (actual.size() != ps->args().size()) return false;
      for (std::size_t i = 0; i < actual.size(); ++i) {
        if (!matchPattern(ps->args()[i], actual[i], bound)) return false;
      }
      return true;
    }
    return false;
  }

  // -- constructor/destructor resolution -------------------------------------
  FunctionDecl* findConstructor(const ClassDecl* cls,
                                const std::vector<const Type*>& arg_types,
                                SourceLocation loc) {
    if (cls == nullptr) return nullptr;
    std::vector<Decl*> ctors;
    for (Decl* m : cls->children()) {
      if (auto* f = m->as<FunctionDecl>();
          f != nullptr && f->fkind == FunctionKind::Constructor)
        ctors.push_back(m);
    }
    return pickOverload(ctors, arg_types, {}, loc);
  }

  FunctionDecl* findDestructor(const ClassDecl* cls) {
    if (cls == nullptr) return nullptr;
    for (Decl* m : cls->children()) {
      if (auto* f = m->as<FunctionDecl>();
          f != nullptr && f->fkind == FunctionKind::Destructor)
        return f;
    }
    return nullptr;
  }

  void noteLifetime(VarDecl* var) {
    const Type* t = canonical(var->type);
    const auto* ct = t != nullptr ? t->as<ClassType>() : nullptr;
    if (ct == nullptr) return;
    auto* cls = const_cast<ClassDecl*>(ct->decl());
    std::vector<const Type*> arg_types;
    for (Expr* a : var->ctor_args) arg_types.push_back(a != nullptr ? a->type : nullptr);
    if (var->init != nullptr && var->ctor_args.empty())
      arg_types.push_back(var->init->type);
    FunctionDecl* ctor = findConstructor(cls, arg_types, var->location());
    var->resolved_ctor = ctor;
    if (ctor != nullptr) sema_.noteUsed(ctor);
    FunctionDecl* dtor = findDestructor(cls);
    var->resolved_dtor = dtor;
    if (dtor != nullptr) sema_.noteUsed(dtor);
  }

  void resolveCtorInits() {
    for (auto& init : fn_->ctor_inits) {
      for (Expr* a : init.args) resolveExpr(a);
      std::vector<const Type*> arg_types;
      for (Expr* a : init.args) arg_types.push_back(a != nullptr ? a->type : nullptr);
      if (this_class_ == nullptr) continue;
      // The initializer names a member (construct its class type) or a base.
      const ClassDecl* target = nullptr;
      for (const Decl* m : this_class_->children()) {
        if (m->name() == init.name) {
          if (const auto* v = m->as<VarDecl>()) {
            if (const auto* ct = canonical(v->type)->as<ClassType>())
              target = ct->decl();
          }
          break;
        }
      }
      if (target == nullptr) {
        for (const BaseSpecifier& b : this_class_->bases) {
          if (b.base != nullptr && b.base->name() == init.name) {
            target = b.base;
            break;
          }
        }
      }
      if (target != nullptr) {
        FunctionDecl* ctor = findConstructor(target, arg_types, init.location);
        init.resolved_ctor = ctor;
        if (ctor != nullptr) sema_.noteUsed(ctor);
      }
    }
  }

  // -- statements -------------------------------------------------------------
  void resolveStmt(Stmt* s) {
    if (s == nullptr) return;
    switch (s->kind()) {
      case StmtKind::Compound: {
        pushLocalScope();
        for (Stmt* c : s->as<CompoundStmt>()->body) resolveStmt(c);
        popLocalScope();
        break;
      }
      case StmtKind::DeclStatement: {
        for (VarDecl* v : s->as<DeclStmt>()->vars) {
          // Resolve initializers before the name is visible (C++ lets the
          // name shadow, but init uses outer binding only in edge cases —
          // the simple order is fine for call extraction).
          resolveExpr(v->init);
          for (Expr* a : v->ctor_args) resolveExpr(a);
          declareLocal(v->name(), v);
          noteLifetime(v);
        }
        break;
      }
      case StmtKind::If: {
        auto* n = s->as<IfStmt>();
        resolveExpr(n->condition);
        resolveStmt(n->then_branch);
        resolveStmt(n->else_branch);
        break;
      }
      case StmtKind::While: {
        auto* n = s->as<WhileStmt>();
        resolveExpr(n->condition);
        resolveStmt(n->body);
        break;
      }
      case StmtKind::DoWhile: {
        auto* n = s->as<DoWhileStmt>();
        resolveStmt(n->body);
        resolveExpr(n->condition);
        break;
      }
      case StmtKind::For: {
        auto* n = s->as<ForStmt>();
        pushLocalScope();
        resolveStmt(n->init);
        resolveExpr(n->condition);
        resolveExpr(n->increment);
        resolveStmt(n->body);
        popLocalScope();
        break;
      }
      case StmtKind::Switch: {
        auto* n = s->as<SwitchStmt>();
        resolveExpr(n->condition);
        resolveStmt(n->body);
        break;
      }
      case StmtKind::Case: {
        auto* n = s->as<CaseStmt>();
        resolveExpr(n->value);
        resolveStmt(n->body);
        break;
      }
      case StmtKind::Default:
        resolveStmt(s->as<DefaultStmt>()->body);
        break;
      case StmtKind::Return:
        resolveExpr(s->as<ReturnStmt>()->value);
        break;
      case StmtKind::ExprStatement:
        resolveExpr(s->as<ExprStmt>()->expr);
        break;
      case StmtKind::Label:
        resolveStmt(s->as<LabelStmt>()->body);
        break;
      case StmtKind::Try: {
        auto* n = s->as<TryStmt>();
        resolveStmt(n->body);
        for (auto& h : n->handlers) {
          pushLocalScope();
          if (h.var != nullptr) declareLocal(h.var->name(), h.var);
          resolveStmt(h.body);
          popLocalScope();
        }
        break;
      }
      default:
        if (auto* e = dynamic_cast<Expr*>(s)) resolveExpr(e);
        break;
    }
  }

  // -- expressions: returns the computed type (also stored on the node) ------
  const Type* resolveExpr(Expr* e) {
    if (e == nullptr) return nullptr;
    switch (e->kind()) {
      case StmtKind::IntLit:
        return e->type = ctx_.intType();
      case StmtKind::FloatLit:
        return e->type = ctx_.builtin(BuiltinKind::Double);
      case StmtKind::CharLit:
        return e->type = ctx_.builtin(BuiltinKind::Char);
      case StmtKind::StringLit:
        return e->type =
                   ctx_.pointerTo(ctx_.qualified(ctx_.builtin(BuiltinKind::Char),
                                                 true, false));
      case StmtKind::BoolLit:
        return e->type = ctx_.boolType();
      case StmtKind::This: {
        if (this_class_ != nullptr)
          e->type = ctx_.pointerTo(ctx_.classType(this_class_));
        return e->type;
      }
      case StmtKind::DeclRef:
        return resolveDeclRef(e->as<DeclRefExpr>());
      case StmtKind::Member:
        return resolveMember(e->as<MemberExpr>());
      case StmtKind::Call:
        return resolveCall(e->as<CallExpr>());
      case StmtKind::Unary: {
        auto* n = e->as<UnaryExpr>();
        const Type* t = resolveExpr(n->operand);
        if (t == nullptr) return nullptr;
        if (n->op == "*") {
          if (const auto* p = canonical(t)->as<PointerType>())
            return e->type = p->pointee();
          return e->type = t;
        }
        if (n->op == "&") return e->type = ctx_.pointerTo(t);
        if (n->op == "!") return e->type = ctx_.boolType();
        return e->type = t;
      }
      case StmtKind::Binary: {
        auto* n = e->as<BinaryExpr>();
        const Type* lt = resolveExpr(n->lhs);
        const Type* rt = resolveExpr(n->rhs);
        // Overloaded operator on class-typed operands: member operators
        // first, then free operator functions (incl. operator templates).
        const bool class_operand =
            (lt != nullptr &&
             strippedForMemberAccess(lt)->as<ClassType>() != nullptr) ||
            (rt != nullptr &&
             strippedForMemberAccess(rt)->as<ClassType>() != nullptr);
        if (lt != nullptr) {
          if (const auto* ct = strippedForMemberAccess(lt)->as<ClassType>()) {
            auto cands = Sema::lookupInClass(ct->decl(), "operator" + n->op);
            if (!cands.empty()) {
              FunctionDecl* op = pickOverload(cands, {rt}, {}, n->extent().begin);
              if (op != nullptr) {
                n->resolved_operator = op;
                sema_.noteUsed(op);
                return e->type = op->return_type;
              }
            }
          }
        }
        if (class_operand) {
          auto cands = lookupName("operator" + n->op);
          if (!cands.empty()) {
            FunctionDecl* op = pickOverload(cands, {lt, rt}, {}, n->extent().begin);
            if (op != nullptr) {
              n->resolved_operator = op;
              sema_.noteUsed(op);
              return e->type = op->return_type;
            }
          }
        }
        if (n->op == "==" || n->op == "!=" || n->op == "<" || n->op == ">" ||
            n->op == "<=" || n->op == ">=" || n->op == "&&" || n->op == "||")
          return e->type = ctx_.boolType();
        return e->type = lt != nullptr ? lt : rt;
      }
      case StmtKind::Conditional: {
        auto* n = e->as<ConditionalExpr>();
        resolveExpr(n->condition);
        const Type* t = resolveExpr(n->true_value);
        resolveExpr(n->false_value);
        return e->type = t;
      }
      case StmtKind::Cast: {
        auto* n = e->as<CastExpr>();
        resolveExpr(n->operand);
        return e->type = n->target;
      }
      case StmtKind::New: {
        auto* n = e->as<NewExpr>();
        std::vector<const Type*> arg_types;
        for (Expr* a : n->args) arg_types.push_back(resolveExpr(a));
        if (const auto* ct = canonical(n->allocated)->as<ClassType>()) {
          n->ctor = findConstructor(ct->decl(), arg_types, n->extent().begin);
          if (n->ctor != nullptr) sema_.noteUsed(const_cast<FunctionDecl*>(n->ctor));
        }
        return e->type = ctx_.pointerTo(n->allocated);
      }
      case StmtKind::Delete: {
        auto* n = e->as<DeleteExpr>();
        const Type* t = resolveExpr(n->operand);
        if (t != nullptr) {
          if (const auto* p = canonical(t)->as<PointerType>()) {
            if (const auto* ct = canonical(p->pointee())->as<ClassType>()) {
              n->dtor = findDestructor(ct->decl());
              if (n->dtor != nullptr)
                sema_.noteUsed(const_cast<FunctionDecl*>(n->dtor));
            }
          }
        }
        return e->type = ctx_.voidType();
      }
      case StmtKind::Index: {
        auto* n = e->as<IndexExpr>();
        const Type* bt = resolveExpr(n->base);
        resolveExpr(n->index);
        if (bt == nullptr) return nullptr;
        const Type* stripped = strippedForMemberAccess(bt);
        if (const auto* p = stripped->as<PointerType>())
          return e->type = p->pointee();
        if (const auto* a = stripped->as<ArrayType>())
          return e->type = a->element();
        if (const auto* ct = stripped->as<ClassType>()) {
          auto cands = Sema::lookupInClass(ct->decl(), "operator[]");
          FunctionDecl* op =
              pickOverload(cands, {n->index->type}, {}, n->extent().begin);
          if (op != nullptr) {
            n->resolved_operator = op;
            sema_.noteUsed(op);
            return e->type = op->return_type;
          }
        }
        return nullptr;
      }
      case StmtKind::Construct: {
        auto* n = e->as<ConstructExpr>();
        std::vector<const Type*> arg_types;
        for (Expr* a : n->args) arg_types.push_back(resolveExpr(a));
        if (const auto* ct = canonical(n->constructed)->as<ClassType>()) {
          n->ctor = findConstructor(ct->decl(), arg_types, n->extent().begin);
          if (n->ctor != nullptr) sema_.noteUsed(const_cast<FunctionDecl*>(n->ctor));
        }
        return e->type = n->constructed;
      }
      case StmtKind::Throw: {
        auto* n = e->as<ThrowExpr>();
        resolveExpr(n->operand);
        return e->type = ctx_.voidType();
      }
      case StmtKind::SizeOf:
        resolveExpr(e->as<SizeOfExpr>()->expr_operand);
        return e->type = ctx_.builtin(BuiltinKind::ULong);
      case StmtKind::Comma: {
        auto* n = e->as<CommaExpr>();
        resolveExpr(n->lhs);
        return e->type = resolveExpr(n->rhs);
      }
      default:
        return nullptr;
    }
  }

  static const Type* declType(const Decl* d) {
    if (d == nullptr) return nullptr;
    if (const auto* v = d->as<VarDecl>()) return v->type;
    if (const auto* p = d->as<ParamDecl>()) return p->type;
    if (const auto* f = d->as<FunctionDecl>()) return f->signature;
    if (const auto* en = d->as<EnumeratorDecl>()) {
      (void)en;
      return nullptr;  // enumerators act as ints below
    }
    return nullptr;
  }

  const Type* resolveDeclRef(DeclRefExpr* e) {
    std::vector<Decl*> found;
    if (e->qualifier_type != nullptr) {
      const Type* qt = e->qualifier_type;
      if (qt->isDependent()) return nullptr;  // unreachable after subst
      if (const auto* ct = canonical(qt)->as<ClassType>())
        found = Sema::lookupInClass(ct->decl(), e->name);
    } else if (e->qualifier_ns != nullptr) {
      if (const auto* ns = e->qualifier_ns->as<NamespaceDecl>())
        found = Sema::lookupInContext(ns, e->name);
    } else {
      found = lookupName(e->name);
    }
    if (found.empty()) return nullptr;
    if (found.size() == 1) {
      e->decl = found[0];
      if (const auto* en = found[0]->as<EnumeratorDecl>()) {
        (void)en;
        return e->type = ctx_.intType();
      }
      return e->type = declType(found[0]);
    }
    for (const Decl* d : found) e->candidates.push_back(d);
    e->decl = found[0];
    return e->type = declType(found[0]);
  }

  const Type* resolveMember(MemberExpr* e) {
    const Type* bt = resolveExpr(e->base);
    if (bt == nullptr) return nullptr;
    const Type* stripped = strippedForMemberAccess(bt);
    if (e->is_arrow) {
      if (const auto* p = stripped->as<PointerType>())
        stripped = strippedForMemberAccess(p->pointee());
    }
    const auto* ct = stripped->as<ClassType>();
    if (ct == nullptr) return nullptr;
    auto found = Sema::lookupInClass(ct->decl(), e->member);
    if (found.empty()) return nullptr;
    e->decl = found[0];
    for (const Decl* d : found) e->candidates.push_back(d);
    return e->type = declType(found[0]);
  }

  const Type* resolveCall(CallExpr* e) {
    std::vector<const Type*> arg_types;
    for (Expr* a : e->args) arg_types.push_back(resolveExpr(a));

    if (auto* member = e->callee->as<MemberExpr>()) {
      const Type* bt = resolveExpr(member->base);
      const ClassDecl* cls = nullptr;
      if (bt != nullptr) {
        const Type* stripped = strippedForMemberAccess(bt);
        if (member->is_arrow) {
          if (const auto* p = stripped->as<PointerType>())
            stripped = strippedForMemberAccess(p->pointee());
        }
        if (const auto* ct = stripped->as<ClassType>()) cls = ct->decl();
      }
      if (cls != nullptr) {
        auto cands = Sema::lookupInClass(cls, member->member);
        FunctionDecl* fn = pickOverload(cands, arg_types, {}, e->call_location);
        if (fn != nullptr) {
          member->decl = fn;
          e->resolved = fn;
          e->is_virtual_call = fn->is_virtual;
          sema_.noteUsed(fn);
          return e->type = fn->return_type;
        }
      }
      return nullptr;
    }

    if (auto* ref = e->callee->as<DeclRefExpr>()) {
      std::vector<Decl*> cands;
      bool qualified_member = false;
      if (ref->qualifier_type != nullptr) {
        if (const auto* ct = canonical(ref->qualifier_type)->as<ClassType>()) {
          cands = Sema::lookupInClass(ct->decl(), ref->name);
          qualified_member = true;
        }
      } else if (ref->qualifier_ns != nullptr) {
        if (const auto* ns = ref->qualifier_ns->as<NamespaceDecl>())
          cands = Sema::lookupInContext(ns, ref->name);
      } else {
        cands = lookupName(ref->name);
      }
      FunctionDecl* fn =
          pickOverload(cands, arg_types, ref->explicit_targs, e->call_location);
      if (fn != nullptr) {
        ref->decl = fn;
        e->resolved = fn;
        // Unqualified member calls inside member functions dispatch
        // virtually; explicitly qualified calls do not.
        e->is_virtual_call = fn->is_virtual && !qualified_member;
        sema_.noteUsed(fn);
        return e->type = fn->return_type;
      }
      // Callee may be a variable of class type with operator().
      const Type* vt = resolveDeclRef(ref);
      if (vt != nullptr) {
        if (const auto* ct = strippedForMemberAccess(vt)->as<ClassType>()) {
          auto ops = Sema::lookupInClass(ct->decl(), "operator()");
          FunctionDecl* op = pickOverload(ops, arg_types, {}, e->call_location);
          if (op != nullptr) {
            e->resolved = op;
            sema_.noteUsed(op);
            return e->type = op->return_type;
          }
        }
        // Call through a function pointer: type is the pointee signature.
        if (const auto* p = canonical(vt)->as<PointerType>()) {
          if (const auto* ft = p->pointee()->as<FunctionType>())
            return e->type = ft->result();
        }
        if (const auto* ft = canonical(vt)->as<FunctionType>())
          return e->type = ft->result();
      }
      return nullptr;
    }

    // Arbitrary callee expression (e.g. (obj.fp)(x)).
    const Type* ct = resolveExpr(e->callee);
    if (ct != nullptr) {
      if (const auto* p = canonical(ct)->as<PointerType>()) {
        if (const auto* ft = p->pointee()->as<FunctionType>())
          return e->type = ft->result();
      }
      if (const auto* ft = canonical(ct)->as<FunctionType>())
        return e->type = ft->result();
    }
    return nullptr;
  }

  Sema& sema_;
  AstContext& ctx_;
  FunctionDecl* fn_;
  const ClassDecl* this_class_ = nullptr;
  std::vector<std::unordered_map<std::string, Decl*>> locals_;
};

}  // namespace

void Sema::resolveFunctionBody(ast::FunctionDecl* fn) {
  if (fn == nullptr || fn->body == nullptr) return;
  BodyResolver resolver(*this, fn);
  resolver.run();
}

}  // namespace pdt::sema
