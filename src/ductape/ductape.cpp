#include "ductape/ductape.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <unordered_map>
#include <unordered_set>

#include "pdb/reader.h"
#include "pdb/writer.h"
#include "support/trace.h"

namespace pdt::ductape {

PDB::PDB() = default;
PDB::~PDB() = default;
PDB::PDB(PDB&&) noexcept = default;
PDB& PDB::operator=(PDB&&) noexcept = default;

std::string pdbItem::fullName() const {
  if (parent_class_ == nullptr && parent_nspace_ == nullptr) return name_;
  if (full_name_.empty()) {
    const std::string parent = parent_class_ != nullptr
                                   ? parent_class_->fullName()
                                   : parent_nspace_->fullName();
    full_name_.reserve(parent.size() + 2 + name_.size());
    full_name_ = parent;
    full_name_ += "::";
    full_name_ += name_;
  }
  return full_name_;
}

// ---------------------------------------------------------------------------
// Construction from the typed representation
// ---------------------------------------------------------------------------

PDB PDB::fromPdbFile(const pdb::PdbFile& file) {
  PDB out;
  out.raw_ = file;
  out.raw_.reindex();
  out.graph_dirty_ = true;
  return out;
}

PDB PDB::read(const std::string& path) {
  return read(path, pdb::Sections::All);
}

PDB PDB::read(const std::string& path, pdb::Sections sections) {
  PDB out;
  auto result = pdb::open(path, sections);
  if (!result.opened) {
    out.error_ = "cannot open '" + path + "'";
    return out;
  }
  if (!result.ok()) {
    out.error_ = path + ": " + result.errors.front();
    return out;
  }
  out.raw_ = result.snapshot->clonePdb();
  out.graph_dirty_ = true;
  return out;
}

PDB PDB::fromSnapshot(const pdb::SnapshotPtr& snapshot) {
  PDB out;
  if (snapshot == nullptr) {
    out.error_ = "null snapshot";
    return out;
  }
  out.raw_ = snapshot->clonePdb();
  out.graph_dirty_ = true;
  return out;
}

bool PDB::write(const std::string& path) const {
  return pdb::writeToFile(raw_, path);
}

bool PDB::write(const std::string& path, pdb::Format format) const {
  return pdb::writeFile(raw_, path, format);
}

void PDB::write(std::ostream& os) const { pdb::write(raw_, os); }

void PDB::ensureBuilt() const {
  if (!graph_dirty_) return;
  // Logically-const lazy construction; instances are single-thread-confined.
  auto* self = const_cast<PDB*>(this);
  self->build();
  self->graph_dirty_ = false;
}

void PDB::build() {
  file_storage_.clear();
  routine_storage_.clear();
  class_storage_.clear();
  type_storage_.clear();
  template_storage_.clear();
  namespace_storage_.clear();
  macro_storage_.clear();
  call_storage_.clear();
  files_.clear();
  routines_.clear();
  classes_.clear();
  types_.clear();
  templates_.clear();
  namespaces_.clear();
  macros_.clear();

  std::unordered_map<std::uint32_t, pdbFile*> file_by_id;
  std::unordered_map<std::uint32_t, pdbRoutine*> routine_by_id;
  std::unordered_map<std::uint32_t, pdbClass*> class_by_id;
  std::unordered_map<std::uint32_t, pdbType*> type_by_id;
  std::unordered_map<std::uint32_t, pdbTemplate*> template_by_id;
  std::unordered_map<std::uint32_t, pdbNamespace*> namespace_by_id;

  // Pass 1: create all objects so cross-references can be wired in pass 2.
  for (const auto& f : raw_.sourceFiles()) {
    auto obj = std::make_unique<pdbFile>(std::string(f.name), static_cast<int>(f.id));
    obj->system_ = f.system;
    file_by_id[f.id] = obj.get();
    files_.push_back(obj.get());
    file_storage_.push_back(std::move(obj));
  }
  for (const auto& r : raw_.routines()) {
    auto obj = std::make_unique<pdbRoutine>(std::string(r.name), static_cast<int>(r.id));
    routine_by_id[r.id] = obj.get();
    routines_.push_back(obj.get());
    routine_storage_.push_back(std::move(obj));
  }
  for (const auto& c : raw_.classes()) {
    auto obj = std::make_unique<pdbClass>(std::string(c.name), static_cast<int>(c.id));
    class_by_id[c.id] = obj.get();
    classes_.push_back(obj.get());
    class_storage_.push_back(std::move(obj));
  }
  for (const auto& t : raw_.types()) {
    auto obj = std::make_unique<pdbType>(std::string(t.name), static_cast<int>(t.id));
    type_by_id[t.id] = obj.get();
    types_.push_back(obj.get());
    type_storage_.push_back(std::move(obj));
  }
  for (const auto& t : raw_.templates()) {
    auto obj = std::make_unique<pdbTemplate>(std::string(t.name), static_cast<int>(t.id));
    template_by_id[t.id] = obj.get();
    templates_.push_back(obj.get());
    template_storage_.push_back(std::move(obj));
  }
  for (const auto& n : raw_.namespaces()) {
    auto obj = std::make_unique<pdbNamespace>(std::string(n.name), static_cast<int>(n.id));
    namespace_by_id[n.id] = obj.get();
    namespaces_.push_back(obj.get());
    namespace_storage_.push_back(std::move(obj));
  }
  for (const auto& m : raw_.macros()) {
    auto obj = std::make_unique<pdbMacro>(std::string(m.name), static_cast<int>(m.id));
    obj->kind_ = m.kind == "undef" ? pdbMacro::MA_UNDEF : pdbMacro::MA_DEF;
    obj->text_ = m.text;
    macros_.push_back(obj.get());
    macro_storage_.push_back(std::move(obj));
  }

  const auto loc = [&](const pdb::Pos& pos) -> pdbLoc {
    pdbLoc l;
    if (const auto it = file_by_id.find(pos.file); it != file_by_id.end())
      l.file_ptr = it->second;
    l.line_ = static_cast<int>(pos.line);
    l.col_ = static_cast<int>(pos.column);
    return l;
  };
  const auto access = [](std::string_view a) {
    if (a == "pub") return pdbItem::AC_PUB;
    if (a == "prot") return pdbItem::AC_PROT;
    if (a == "priv") return pdbItem::AC_PRIV;
    return pdbItem::AC_NA;
  };
  const auto typeOf = [&](const pdb::ItemRef& ref) -> const pdbType* {
    if (ref.kind != pdb::ItemKind::Type) return nullptr;
    const auto it = type_by_id.find(ref.id);
    return it == type_by_id.end() ? nullptr : it->second;
  };
  const auto classOf = [&](const pdb::ItemRef& ref) -> const pdbClass* {
    if (ref.kind != pdb::ItemKind::Class) return nullptr;
    const auto it = class_by_id.find(ref.id);
    return it == class_by_id.end() ? nullptr : it->second;
  };
  const auto setParent = [&](pdbItem* item, const std::optional<pdb::ItemRef>& p) {
    if (!p) return;
    if (p->kind == pdb::ItemKind::Class) {
      if (const auto it = class_by_id.find(p->id); it != class_by_id.end())
        item->parent_class_ = it->second;
    } else if (p->kind == pdb::ItemKind::Namespace) {
      if (const auto it = namespace_by_id.find(p->id); it != namespace_by_id.end())
        item->parent_nspace_ = it->second;
    }
  };
  const auto setFat = [&](pdbFatItem* item, const pdb::Extent& e) {
    item->head_begin_ = loc(e.header_begin);
    item->head_end_ = loc(e.header_end);
    item->body_begin_ = loc(e.body_begin);
    item->body_end_ = loc(e.body_end);
  };

  // Pass 2: wire attributes and cross-references.
  for (const auto& f : raw_.sourceFiles()) {
    pdbFile* obj = file_by_id.at(f.id);
    for (const std::uint32_t inc : f.includes) {
      if (const auto it = file_by_id.find(inc); it != file_by_id.end())
        obj->includes_.push_back(it->second);
    }
  }
  for (const auto& t : raw_.types()) {
    pdbType* obj = type_by_id.at(t.id);
    if (t.kind == "bool") obj->kind_ = pdbType::TY_BOOL;
    else if (t.kind == "char") obj->kind_ = pdbType::TY_CHAR;
    else if (t.kind == "int") obj->kind_ = pdbType::TY_INT;
    else if (t.kind == "float") obj->kind_ = pdbType::TY_FLOAT;
    else if (t.kind == "void") obj->kind_ = pdbType::TY_VOID;
    else if (t.kind == "wchar") obj->kind_ = pdbType::TY_WCHAR;
    else if (t.kind == "ptr") obj->kind_ = pdbType::TY_PTR;
    else if (t.kind == "ref") obj->kind_ = pdbType::TY_REF;
    else if (t.kind == "tref") obj->kind_ = pdbType::TY_TREF;
    else if (t.kind == "func") obj->kind_ = pdbType::TY_FUNC;
    else if (t.kind == "enum") obj->kind_ = pdbType::TY_ENUM;
    else if (t.kind == "array") obj->kind_ = pdbType::TY_ARRAY;
    else if (t.kind == "class") obj->kind_ = pdbType::TY_CLASS;
    else if (t.kind == "tparam") obj->kind_ = pdbType::TY_TPARAM;
    else if (t.kind == "typedef") obj->kind_ = pdbType::TY_TYPEDEF;
    else obj->kind_ = pdbType::TY_OTHER;
    if (t.ref) {
      obj->referenced_ = typeOf(*t.ref);
      obj->referenced_class_ = classOf(*t.ref);
    }
    for (const std::string_view q : t.qualifiers) {
      if (q == "const") obj->is_const_ = true;
      if (q == "volatile") obj->is_volatile_ = true;
    }
    if (t.return_type) obj->return_type_ = typeOf(*t.return_type);
    for (const auto& p : t.params) {
      if (const pdbType* pt = typeOf(p)) obj->arguments_.push_back(pt);
    }
    obj->ellipsis_ = t.has_ellipsis;
    for (const auto& e : t.exception_specs) {
      if (const pdbType* et = typeOf(e)) obj->exception_spec_.push_back(et);
    }
    obj->array_size_ = static_cast<long>(t.array_size);
    for (const auto& [name, value] : t.enumerators)
      obj->enum_constants_.emplace_back(name, static_cast<long>(value));
  }
  for (const auto& t : raw_.templates()) {
    pdbTemplate* obj = template_by_id.at(t.id);
    obj->location_ = loc(t.location);
    obj->access_ = access(t.access);
    setParent(obj, t.parent);
    if (t.kind == "func") obj->kind_ = pdbItem::TE_FUNC;
    else if (t.kind == "memfunc") obj->kind_ = pdbItem::TE_MEMFUNC;
    else if (t.kind == "statmem") obj->kind_ = pdbItem::TE_STATMEM;
    else if (t.kind == "alias") obj->kind_ = pdbItem::TE_ALIAS;
    else obj->kind_ = pdbItem::TE_CLASS;
    obj->text_ = t.text;
    setFat(obj, t.extent);
  }
  for (const auto& c : raw_.classes()) {
    pdbClass* obj = class_by_id.at(c.id);
    obj->location_ = loc(c.location);
    obj->access_ = access(c.access);
    setParent(obj, c.parent);
    obj->kind_ = c.kind == "struct"
                     ? pdbClass::CL_STRUCT
                     : (c.kind == "union" ? pdbClass::CL_UNION : pdbClass::CL_CLASS);
    if (c.template_id) {
      if (const auto it = template_by_id.find(*c.template_id);
          it != template_by_id.end())
        obj->template_ = it->second;
    }
    obj->specialized_ = c.is_specialization;
    for (const auto& b : c.bases) {
      if (const auto it = class_by_id.find(b.cls); it != class_by_id.end()) {
        pdbBase base;
        base.base_ptr = it->second;
        base.access_ = access(b.access);
        base.virtual_ = b.is_virtual;
        obj->bases_.push_back(base);
        it->second->derived_.push_back(obj);
      }
    }
    for (const auto& f : c.friends) {
      pdbFriend fr;
      fr.is_class_ = f.is_class;
      fr.name_ = f.name;
      obj->friends_.push_back(std::move(fr));
    }
    for (const auto& mf : c.funcs) {
      if (const auto it = routine_by_id.find(mf.routine); it != routine_by_id.end())
        obj->funcs_.push_back(it->second);
    }
    for (const auto& m : c.members) {
      pdbMember mem;
      mem.name_ = m.name;
      mem.location_ = loc(m.location);
      mem.access_ = access(m.access);
      mem.kind_ = m.kind;
      mem.type_ = typeOf(m.type);
      mem.class_type_ = classOf(m.type);
      obj->members_.push_back(std::move(mem));
    }
    setFat(obj, c.extent);
  }
  for (const auto& r : raw_.routines()) {
    pdbRoutine* obj = routine_by_id.at(r.id);
    obj->location_ = loc(r.location);
    obj->access_ = access(r.access);
    setParent(obj, r.parent);
    if (const auto it = type_by_id.find(r.signature); it != type_by_id.end())
      obj->signature_ = it->second;
    if (r.kind == "ctor") obj->kind_ = pdbItem::RO_CTOR;
    else if (r.kind == "dtor") obj->kind_ = pdbItem::RO_DTOR;
    else if (r.kind == "conv") obj->kind_ = pdbItem::RO_CONV;
    else if (r.kind == "op") obj->kind_ = pdbItem::RO_OP;
    else obj->kind_ = pdbItem::RO_NORMAL;
    obj->virtuality_ = r.virtuality == "pure"
                           ? pdbItem::VI_PURE
                           : (r.virtuality == "virt" ? pdbItem::VI_VIRT
                                                     : pdbItem::VI_NO);
    obj->linkage_ = r.linkage == "C" ? pdbRoutine::LK_C : pdbRoutine::LK_CXX;
    obj->storage_ = r.storage == "static"
                        ? pdbRoutine::ST_STATIC
                        : (r.storage == "extern" ? pdbRoutine::ST_EXTERN
                                                 : pdbRoutine::ST_NA);
    obj->static_ = r.is_static;
    obj->inline_ = r.is_inline;
    obj->explicit_ = r.is_explicit;
    obj->defined_ = r.defined;
    if (r.template_id) {
      if (const auto it = template_by_id.find(*r.template_id);
          it != template_by_id.end())
        obj->template_ = it->second;
    }
    obj->specialized_ = r.is_specialization;
    setFat(obj, r.extent);
    for (const auto& call : r.calls) {
      const auto it = routine_by_id.find(call.routine);
      if (it == routine_by_id.end()) continue;
      auto edge = std::make_unique<pdbCall>(it->second, call.is_virtual,
                                            loc(call.position));
      obj->callees_.push_back(edge.get());
      // Inverse edge: the callee's callers record who calls it and where.
      auto inverse = std::make_unique<pdbCall>(obj, call.is_virtual,
                                               loc(call.position));
      it->second->callers_.push_back(inverse.get());
      call_storage_.push_back(std::move(edge));
      call_storage_.push_back(std::move(inverse));
    }
  }
  for (const auto& n : raw_.namespaces()) {
    pdbNamespace* obj = namespace_by_id.at(n.id);
    obj->location_ = loc(n.location);
    obj->alias_ = n.alias;
    for (const auto& m : n.members) {
      const pdbItem* member = nullptr;
      switch (m.kind) {
        case pdb::ItemKind::Routine:
          if (const auto it = routine_by_id.find(m.id); it != routine_by_id.end())
            member = it->second;
          break;
        case pdb::ItemKind::Class:
          if (const auto it = class_by_id.find(m.id); it != class_by_id.end())
            member = it->second;
          break;
        case pdb::ItemKind::Namespace:
          if (const auto it = namespace_by_id.find(m.id);
              it != namespace_by_id.end())
            member = it->second;
          break;
        case pdb::ItemKind::Template:
          if (const auto it = template_by_id.find(m.id);
              it != template_by_id.end())
            member = it->second;
          break;
        default:
          break;
      }
      if (member != nullptr) obj->members_.push_back(member);
    }
  }
}

// ---------------------------------------------------------------------------
// Whole-database queries
// ---------------------------------------------------------------------------

PDB::itemvec PDB::getItemVec() const {
  ensureBuilt();
  itemvec out;
  out.reserve(files_.size() + routines_.size() + classes_.size() + types_.size() +
              templates_.size() + namespaces_.size() + macros_.size());
  for (const auto* f : files_) out.push_back(f);
  for (const auto* t : templates_) out.push_back(t);
  for (const auto* r : routines_) out.push_back(r);
  for (const auto* c : classes_) out.push_back(c);
  for (const auto* t : types_) out.push_back(t);
  for (const auto* n : namespaces_) out.push_back(n);
  for (const auto* m : macros_) out.push_back(m);
  return out;
}

PDB::filevec PDB::getIncludeTreeRoots() const {
  ensureBuilt();
  std::unordered_set<const pdbFile*> included;
  for (const pdbFile* f : files_) {
    for (const pdbFile* inc : f->includes()) included.insert(inc);
  }
  filevec roots;
  for (const pdbFile* f : files_) {
    if (!included.contains(f)) roots.push_back(f);
  }
  return roots;
}

PDB::routinevec PDB::getCallTreeRoots() const {
  ensureBuilt();
  routinevec roots;
  for (const pdbRoutine* r : routines_) {
    if (r->callers().empty()) roots.push_back(r);
  }
  return roots;
}

PDB::classvec PDB::getClassHierarchyRoots() const {
  ensureBuilt();
  classvec roots;
  for (const pdbClass* c : classes_) {
    if (c->baseClasses().empty()) roots.push_back(c);
  }
  return roots;
}

// ---------------------------------------------------------------------------
// Merge (pdbmerge): combine databases, eliminate duplicate instantiations
// ---------------------------------------------------------------------------

namespace {

/// Identity keys used to detect duplicates across compilations.
std::string fileKey(const pdb::SourceFileItem& f) { return std::string(f.name); }

std::string posKey(const pdb::PdbFile& owner, const pdb::Pos& pos) {
  if (!pos.valid()) return "@";
  const auto* f = owner.findSourceFile(pos.file);
  return std::string(f != nullptr ? f->name : "?") + ":" +
         std::to_string(pos.line) + ":" + std::to_string(pos.column);
}

/// Joins key parts with '|' in one allocation (parts may be string_views).
template <typename... Parts>
std::string joinKey(const Parts&... parts) {
  std::string key;
  key.reserve((std::string_view(parts).size() + ...) + sizeof...(parts));
  bool first = true;
  const auto append = [&](std::string_view part) {
    if (!first) key.push_back('|');
    first = false;
    key.append(part);
  };
  (append(parts), ...);
  return key;
}

std::string typeKey(const pdb::TypeItem& t) { return joinKey(t.kind, t.name); }

std::string templateKey(const pdb::PdbFile& owner, const pdb::TemplateItem& t) {
  return joinKey(t.kind, t.name, posKey(owner, t.location));
}

std::string classKey(const pdb::ClassItem& c) { return std::string(c.name); }

std::string routineKey(const pdb::PdbFile& owner, const pdb::RoutineItem& r) {
  const auto* sig = owner.findType(r.signature);
  std::string parent;
  if (r.parent && r.parent->kind == pdb::ItemKind::Class) {
    const auto* cls = owner.findClass(r.parent->id);
    if (cls != nullptr) parent = cls->name;
  } else if (r.parent) {
    const auto* ns = owner.findNamespace(r.parent->id);
    if (ns != nullptr) parent = ns->name;
  }
  return parent + "::" + std::string(r.name) + "|" +
         std::string(sig != nullptr ? sig->name : "?");
}

std::string namespaceKey(const pdb::NamespaceItem& n) { return std::string(n.name); }

std::string macroKey(const pdb::MacroItem& m) {
  return joinKey(m.kind, m.name, m.text);
}

}  // namespace

void PDB::merge(const PDB& other) {
  PDT_TRACE_SCOPE("ductape.merge");
  trace::count(trace::Counter::MergeMerges);
  const pdb::PdbFile& theirs = other.raw_;
  const std::size_t items_before = raw_.itemCount();
  // Items copied from `theirs` carry string views into its backings; the
  // merged database must keep that storage alive.
  raw_.adoptBackingsOf(theirs);

  // Old-id -> merged-id maps, per kind.
  std::unordered_map<std::uint32_t, std::uint32_t> file_map, type_map,
      template_map, class_map, routine_map, namespace_map;
  // Which merged items are newly appended (and need reference fixups).
  std::vector<std::uint32_t> new_types, new_templates, new_classes, new_routines,
      new_namespaces;

  // Existing keys.
  std::unordered_map<std::string, std::uint32_t> my_files, my_types, my_templates,
      my_classes, my_routines, my_namespaces;
  std::unordered_set<std::string> my_macros;
  for (const auto& f : raw_.sourceFiles()) my_files.emplace(fileKey(f), f.id);
  for (const auto& t : raw_.types()) my_types.emplace(typeKey(t), t.id);
  for (const auto& t : raw_.templates())
    my_templates.emplace(templateKey(raw_, t), t.id);
  for (const auto& c : raw_.classes()) my_classes.emplace(classKey(c), c.id);
  for (const auto& r : raw_.routines())
    my_routines.emplace(routineKey(raw_, r), r.id);
  for (const auto& n : raw_.namespaces())
    my_namespaces.emplace(namespaceKey(n), n.id);
  for (const auto& m : raw_.macros()) my_macros.insert(macroKey(m));

  // Files.
  for (const auto& f : theirs.sourceFiles()) {
    if (const auto it = my_files.find(fileKey(f)); it != my_files.end()) {
      file_map[f.id] = it->second;
      continue;
    }
    pdb::SourceFileItem copy = f;
    copy.id = 0;
    // The include list still holds ids from `theirs`; drop it so the fixup
    // pass below rebuilds it from remapped ids. Keeping it would union
    // remapped ids onto stale ones whenever the id spaces differ (as they
    // do for the intermediates of the tree-reduction pdbmerge).
    copy.includes.clear();
    const std::uint32_t id = raw_.addSourceFile(std::move(copy));
    file_map[f.id] = id;
    my_files.emplace(fileKey(f), id);
  }
  // Fix include lists of newly added files and union those of duplicates.
  // Indexed by id up front — scanning raw_.sourceFiles() per input file made
  // this quadratic in the number of files.
  std::unordered_map<std::uint32_t, std::size_t> mine_file_at;
  mine_file_at.reserve(raw_.sourceFiles().size());
  for (std::size_t i = 0; i < raw_.sourceFiles().size(); ++i)
    mine_file_at.emplace(raw_.sourceFiles()[i].id, i);
  for (const auto& f : theirs.sourceFiles()) {
    auto& mine = raw_.sourceFiles()[mine_file_at.at(file_map.at(f.id))];
    std::vector<std::uint32_t> remapped;
    for (const std::uint32_t inc : f.includes) {
      if (const auto it = file_map.find(inc); it != file_map.end())
        remapped.push_back(it->second);
    }
    if (mine.includes.empty()) {
      mine.includes = std::move(remapped);
    } else {
      for (const std::uint32_t inc : remapped) {
        if (std::find(mine.includes.begin(), mine.includes.end(), inc) ==
            mine.includes.end())
          mine.includes.push_back(inc);
      }
    }
  }

  const auto remapPos = [&](pdb::Pos& pos) {
    if (const auto it = file_map.find(pos.file); it != file_map.end())
      pos.file = it->second;
    else
      pos = {};
  };
  const auto remapExtent = [&](pdb::Extent& e) {
    remapPos(e.header_begin);
    remapPos(e.header_end);
    remapPos(e.body_begin);
    remapPos(e.body_end);
  };

  // Types (refs fixed after all type ids are known).
  for (const auto& t : theirs.types()) {
    if (const auto it = my_types.find(typeKey(t)); it != my_types.end()) {
      type_map[t.id] = it->second;
      continue;
    }
    pdb::TypeItem copy = t;
    copy.id = 0;
    const std::uint32_t id = raw_.addType(std::move(copy));
    type_map[t.id] = id;
    new_types.push_back(id);
    my_types.emplace(typeKey(t), id);
  }

  // Templates: duplicates (same kind/name/location) are eliminated —
  // the paper's headline pdbmerge behaviour.
  for (const auto& t : theirs.templates()) {
    if (const auto it = my_templates.find(templateKey(theirs, t));
        it != my_templates.end()) {
      template_map[t.id] = it->second;
      continue;
    }
    pdb::TemplateItem copy = t;
    copy.id = 0;
    remapPos(copy.location);
    remapExtent(copy.extent);
    const std::uint32_t id = raw_.addTemplate(std::move(copy));
    template_map[t.id] = id;
    new_templates.push_back(id);
    my_templates.emplace(templateKey(theirs, t), id);
  }

  // Classes: duplicate instantiations ("Stack<int>" from two translation
  // units) collapse to one item.
  for (const auto& c : theirs.classes()) {
    if (const auto it = my_classes.find(classKey(c)); it != my_classes.end()) {
      class_map[c.id] = it->second;
      continue;
    }
    pdb::ClassItem copy = c;
    copy.id = 0;
    remapPos(copy.location);
    remapExtent(copy.extent);
    const std::uint32_t id = raw_.addClass(std::move(copy));
    class_map[c.id] = id;
    new_classes.push_back(id);
    my_classes.emplace(classKey(c), id);
  }

  // Routines. When the duplicate pair is a declaration (one TU sees only a
  // prototype) and a definition (another TU holds the body), the merged
  // routine must carry the definition — its location, extent, and call
  // edges — or the whole-program call graph loses every cross-TU edge out
  // of that routine. Collected here, applied after the id maps close.
  std::vector<std::pair<std::uint32_t, const pdb::RoutineItem*>> dup_routines;
  for (const auto& r : theirs.routines()) {
    if (const auto it = my_routines.find(routineKey(theirs, r));
        it != my_routines.end()) {
      routine_map[r.id] = it->second;
      dup_routines.emplace_back(it->second, &r);
      continue;
    }
    pdb::RoutineItem copy = r;
    copy.id = 0;
    remapPos(copy.location);
    remapExtent(copy.extent);
    for (auto& call : copy.calls) remapPos(call.position);
    const std::uint32_t id = raw_.addRoutine(std::move(copy));
    routine_map[r.id] = id;
    new_routines.push_back(id);
    my_routines.emplace(routineKey(theirs, r), id);
  }

  // Namespaces. Duplicates union their member lists (members are
  // remapped and appended after the id maps are complete, below).
  std::vector<std::pair<std::uint32_t, std::vector<pdb::ItemRef>>>
      namespace_member_appends;
  for (const auto& n : theirs.namespaces()) {
    if (const auto it = my_namespaces.find(namespaceKey(n));
        it != my_namespaces.end()) {
      namespace_map[n.id] = it->second;
      namespace_member_appends.emplace_back(it->second, n.members);
      continue;
    }
    pdb::NamespaceItem copy = n;
    copy.id = 0;
    remapPos(copy.location);
    const std::uint32_t id = raw_.addNamespace(std::move(copy));
    namespace_map[n.id] = id;
    new_namespaces.push_back(id);
    my_namespaces.emplace(namespaceKey(n), id);
  }

  // Macros: exact duplicates dropped.
  for (const auto& m : theirs.macros()) {
    if (my_macros.contains(macroKey(m))) continue;
    pdb::MacroItem copy = m;
    copy.id = 0;
    remapPos(copy.location);
    raw_.addMacro(std::move(copy));
    my_macros.insert(macroKey(m));
  }

  // Dynamic profiles: one per distinct TAU profile entry, keyed by display
  // name. Merging two measured databases sums their counts and times —
  // profiles of the same workload from different processes/runs aggregate
  // instead of duplicating (mirrors tauprof's own cross-file merge).
  {
    std::unordered_map<std::string_view, std::size_t> my_dp_at;
    my_dp_at.reserve(raw_.dynProfs().size());
    for (std::size_t i = 0; i < raw_.dynProfs().size(); ++i)
      my_dp_at.emplace(raw_.dynProfs()[i].name, i);
    for (const auto& p : theirs.dynProfs()) {
      const auto remapped_routine = [&] {
        const auto it = routine_map.find(p.routine);
        return it != routine_map.end() ? it->second : 0u;
      };
      if (const auto it = my_dp_at.find(p.name); it != my_dp_at.end()) {
        auto& mine = raw_.dynProfs()[it->second];
        mine.calls += p.calls;
        mine.child_calls += p.child_calls;
        mine.inclusive_ns += p.inclusive_ns;
        mine.exclusive_ns += p.exclusive_ns;
        mine.threads += p.threads;
        mine.contexts += p.contexts;
        if (mine.routine == 0 && p.routine != 0)
          mine.routine = remapped_routine();
        continue;
      }
      pdb::DynProfItem copy = p;
      copy.id = 0;
      if (copy.routine != 0) copy.routine = remapped_routine();
      raw_.addDynProf(std::move(copy));
    }
  }

  // Def-use streams: one per defined routine, keyed by the merged routine
  // id. When both sides carry a stream for the same routine (the routine
  // itself was a duplicate) the first one wins — mirroring the
  // declaration/definition rule above, where only the defining TU emits a
  // stream at all.
  {
    std::unordered_set<std::uint32_t> my_du_routines;
    my_du_routines.reserve(raw_.defUses().size());
    for (const auto& d : raw_.defUses()) my_du_routines.insert(d.routine);
    for (const auto& d : theirs.defUses()) {
      pdb::DefUseItem copy = d;
      copy.id = 0;
      if (const auto it = routine_map.find(copy.routine);
          it != routine_map.end())
        copy.routine = it->second;
      if (!my_du_routines.insert(copy.routine).second) continue;
      for (auto& e : copy.events) remapPos(e.pos);
      raw_.addDefUse(std::move(copy));
    }
  }

  // Reference fixups on newly appended items.
  const auto remapRef = [&](pdb::ItemRef& ref) {
    const std::unordered_map<std::uint32_t, std::uint32_t>* map = nullptr;
    switch (ref.kind) {
      case pdb::ItemKind::SourceFile: map = &file_map; break;
      case pdb::ItemKind::Type: map = &type_map; break;
      case pdb::ItemKind::Template: map = &template_map; break;
      case pdb::ItemKind::Class: map = &class_map; break;
      case pdb::ItemKind::Routine: map = &routine_map; break;
      case pdb::ItemKind::Namespace: map = &namespace_map; break;
      default: return;
    }
    if (const auto it = map->find(ref.id); it != map->end()) ref.id = it->second;
  };
  const auto remapOptRef = [&](std::optional<pdb::ItemRef>& ref) {
    if (ref) remapRef(*ref);
  };

  raw_.reindex();
  std::unordered_set<std::uint32_t> new_type_set(new_types.begin(), new_types.end());
  for (auto& t : raw_.types()) {
    if (!new_type_set.contains(t.id)) continue;
    remapOptRef(t.ref);
    remapOptRef(t.return_type);
    for (auto& p : t.params) remapRef(p);
    for (auto& e : t.exception_specs) remapRef(e);
  }
  std::unordered_set<std::uint32_t> new_class_set(new_classes.begin(),
                                                  new_classes.end());
  for (auto& c : raw_.classes()) {
    if (!new_class_set.contains(c.id)) continue;
    remapOptRef(c.parent);
    if (c.template_id) {
      if (const auto it = template_map.find(*c.template_id);
          it != template_map.end())
        c.template_id = it->second;
    }
    for (auto& b : c.bases) {
      if (const auto it = class_map.find(b.cls); it != class_map.end())
        b.cls = it->second;
    }
    for (auto& f : c.friends) remapOptRef(f.ref);
    for (auto& mf : c.funcs) {
      if (const auto it = routine_map.find(mf.routine); it != routine_map.end())
        mf.routine = it->second;
      remapPos(mf.location);
    }
    for (auto& m : c.members) {
      remapRef(m.type);
      remapPos(m.location);
    }
  }
  std::unordered_set<std::uint32_t> new_routine_set(new_routines.begin(),
                                                    new_routines.end());
  for (auto& r : raw_.routines()) {
    if (!new_routine_set.contains(r.id)) continue;
    remapOptRef(r.parent);
    if (const auto it = type_map.find(r.signature); it != type_map.end())
      r.signature = it->second;
    if (r.template_id) {
      if (const auto it = template_map.find(*r.template_id);
          it != template_map.end())
        r.template_id = it->second;
    }
    for (auto& call : r.calls) {
      if (const auto it = routine_map.find(call.routine); it != routine_map.end())
        call.routine = it->second;
    }
  }
  std::unordered_set<std::uint32_t> new_template_set(new_templates.begin(),
                                                     new_templates.end());
  for (auto& t : raw_.templates()) {
    if (!new_template_set.contains(t.id)) continue;
    remapOptRef(t.parent);
  }
  std::unordered_set<std::uint32_t> new_namespace_set(new_namespaces.begin(),
                                                      new_namespaces.end());
  for (auto& n : raw_.namespaces()) {
    if (!new_namespace_set.contains(n.id)) continue;
    for (auto& m : n.members) remapRef(m);
  }
  // Declaration + definition pairs: adopt the definition side.
  if (!dup_routines.empty()) {
    std::unordered_map<std::uint32_t, std::size_t> mine_routine_at;
    mine_routine_at.reserve(raw_.routines().size());
    for (std::size_t i = 0; i < raw_.routines().size(); ++i)
      mine_routine_at.emplace(raw_.routines()[i].id, i);
    for (const auto& [my_id, their_r] : dup_routines) {
      auto& mine = raw_.routines()[mine_routine_at.at(my_id)];
      if (mine.defined || !their_r->defined) continue;
      mine.defined = true;
      mine.location = their_r->location;
      remapPos(mine.location);
      mine.extent = their_r->extent;
      remapExtent(mine.extent);
      mine.calls = their_r->calls;
      for (auto& call : mine.calls) {
        if (const auto it = routine_map.find(call.routine);
            it != routine_map.end())
          call.routine = it->second;
        remapPos(call.position);
      }
    }
  }
  // Union member lists of namespaces that merged with existing ones.
  if (!namespace_member_appends.empty()) {
    std::unordered_map<std::uint32_t, std::size_t> mine_ns_at;
    mine_ns_at.reserve(raw_.namespaces().size());
    for (std::size_t i = 0; i < raw_.namespaces().size(); ++i)
      mine_ns_at.emplace(raw_.namespaces()[i].id, i);
    for (auto& [ns_id, members] : namespace_member_appends) {
      auto& n = raw_.namespaces()[mine_ns_at.at(ns_id)];
      for (pdb::ItemRef m : members) {
        remapRef(m);
        if (std::find(n.members.begin(), n.members.end(), m) == n.members.end())
          n.members.push_back(m);
      }
    }
  }

  raw_.reindex();
  // Whatever `theirs` carried that did not grow the merged database was a
  // duplicate folded into an existing item.
  const std::size_t grew = raw_.itemCount() - items_before;
  trace::count(trace::Counter::MergeDuplicatesElided,
               theirs.itemCount() >= grew ? theirs.itemCount() - grew : 0);
  // Merged items come from two files; their record offsets no longer mean
  // anything, so validation reports plain ids again.
  raw_.setOffsetUnit(pdb::OffsetUnit::None);
  graph_dirty_ = true;  // object graph rebuilt lazily at the next accessor
}

}  // namespace pdt::ductape
