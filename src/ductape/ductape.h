// DUCTAPE: C++ program Database Utilities and Conversion Tools
// APplication Environment (paper §3.3).
//
// Object-oriented API over PDB files. The class hierarchy reproduces
// paper Figure 4:
//
//   pdbSimpleItem
//   ├── pdbFile
//   └── pdbItem
//       ├── pdbMacro
//       ├── pdbType
//       └── pdbFatItem
//           ├── pdbTemplate
//           ├── pdbNamespace
//           └── pdbTemplateItem
//               ├── pdbClass
//               └── pdbRoutine
//
// Attribute references are implemented as pointers to the corresponding
// objects, "allowing easy navigation through the available program
// information". Naming follows the paper's code excerpts (Figures 5/6):
// pdbRoutine::callvec, callees(), call(), isVirtual(), fullName(),
// flag(), PDB::getTemplateVec(), pdbItem::TE_MEMFUNC, ...
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "pdb/format.h"
#include "pdb/pdb.h"
#include "pdb/snapshot.h"

namespace pdt::ductape {

class PDB;
class pdbFile;
class pdbType;
class pdbClass;
class pdbRoutine;
class pdbTemplate;
class pdbNamespace;

/// Traversal flag used by tools that walk cyclic structures (Figure 5).
enum pdbFlag { INACTIVE = 0, ACTIVE = 1 };

/// A source location: file + line + column.
struct pdbLoc {
  const pdbFile* file_ptr = nullptr;
  int line_ = 0;
  int col_ = 0;

  [[nodiscard]] const pdbFile* file() const { return file_ptr; }
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int col() const { return col_; }
  [[nodiscard]] bool valid() const { return file_ptr != nullptr; }
};

// ---------------------------------------------------------------------------
// pdbSimpleItem: name + id (root of Figure 4)
// ---------------------------------------------------------------------------

class pdbSimpleItem {
 public:
  explicit pdbSimpleItem(std::string name = {}, int id = 0)
      : name_(std::move(name)), id_(id) {}
  virtual ~pdbSimpleItem() = default;

  pdbSimpleItem(const pdbSimpleItem&) = delete;
  pdbSimpleItem& operator=(const pdbSimpleItem&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int id() const { return id_; }

  /// Fully qualified name ("Stack<int>::push").
  [[nodiscard]] virtual std::string fullName() const { return name_; }

  [[nodiscard]] pdbFlag flag() const { return flag_; }
  void flag(pdbFlag f) const { flag_ = f; }

 protected:
  friend class PDB;
  std::string name_;
  int id_;

 private:
  mutable pdbFlag flag_ = INACTIVE;  // tool traversal state (Figure 5)
};

// ---------------------------------------------------------------------------
// pdbFile
// ---------------------------------------------------------------------------

class pdbFile final : public pdbSimpleItem {
 public:
  using incvec = std::vector<const pdbFile*>;

  using pdbSimpleItem::pdbSimpleItem;

  /// Files this file #includes, in include order.
  [[nodiscard]] const incvec& includes() const { return includes_; }
  [[nodiscard]] bool isSystemFile() const { return system_; }

 private:
  friend class PDB;
  incvec includes_;
  bool system_ = false;
};

// ---------------------------------------------------------------------------
// pdbItem: location, parent, access
// ---------------------------------------------------------------------------

class pdbItem : public pdbSimpleItem {
 public:
  enum access_t { AC_NA, AC_PUB, AC_PROT, AC_PRIV };

  /// Template kinds (paper Figure 6).
  enum templ_t { TE_CLASS, TE_FUNC, TE_MEMFUNC, TE_STATMEM, TE_ALIAS };

  /// Routine kinds.
  enum routine_t { RO_NORMAL, RO_CTOR, RO_DTOR, RO_CONV, RO_OP };

  /// Virtuality.
  enum virt_t { VI_NO, VI_VIRT, VI_PURE };

  using pdbSimpleItem::pdbSimpleItem;

  [[nodiscard]] const pdbLoc& location() const { return location_; }
  [[nodiscard]] access_t access() const { return access_; }
  /// Parent class, when this item is a class member (null otherwise).
  [[nodiscard]] const pdbClass* parentClass() const { return parent_class_; }
  /// Parent namespace, when directly inside one (null otherwise).
  [[nodiscard]] const pdbNamespace* parentNSpace() const { return parent_nspace_; }

  [[nodiscard]] std::string fullName() const override;

 protected:
  friend class PDB;
  pdbLoc location_;
  access_t access_ = AC_NA;
  const pdbClass* parent_class_ = nullptr;
  const pdbNamespace* parent_nspace_ = nullptr;

 private:
  /// Qualified-name cache: parents never change after PDB::build(), and a
  /// merge discards and rebuilds every object, so the first computation
  /// stays valid for the object's lifetime. Tree walks (pdbtree, the
  /// instrumentor) ask for fullName() once per visited edge; without the
  /// cache each ask re-walks the parent chain and reallocates.
  mutable std::string full_name_;
};

// ---------------------------------------------------------------------------
// pdbMacro
// ---------------------------------------------------------------------------

class pdbMacro final : public pdbItem {
 public:
  enum macro_t { MA_DEF, MA_UNDEF };

  using pdbItem::pdbItem;

  [[nodiscard]] macro_t kind() const { return kind_; }
  [[nodiscard]] const std::string& text() const { return text_; }

 private:
  friend class PDB;
  macro_t kind_ = MA_DEF;
  std::string text_;
};

// ---------------------------------------------------------------------------
// pdbType
// ---------------------------------------------------------------------------

class pdbType final : public pdbItem {
 public:
  enum type_t {
    TY_BOOL, TY_CHAR, TY_INT, TY_FLOAT, TY_VOID, TY_WCHAR, TY_PTR, TY_REF,
    TY_TREF, TY_FUNC, TY_ENUM, TY_ARRAY, TY_CLASS, TY_TPARAM, TY_TYPEDEF,
    TY_OTHER,
  };

  using typevec = std::vector<const pdbType*>;

  using pdbItem::pdbItem;

  [[nodiscard]] type_t kind() const { return kind_; }
  /// Pointee/referee/element/underlying type (TY_PTR/TY_REF/TY_TREF/...).
  [[nodiscard]] const pdbType* referencedType() const { return referenced_; }
  /// When the referenced type is a class with a cl item (paper allows
  /// "cmtype cl#63"-style direct references), the class; null otherwise.
  [[nodiscard]] const pdbClass* referencedClass() const { return referenced_class_; }
  /// The class this type names, for class types that have a cl item.
  [[nodiscard]] const pdbClass* isClass() const { return class_; }
  [[nodiscard]] bool isConst() const { return is_const_; }
  [[nodiscard]] bool isVolatile() const { return is_volatile_; }
  // Function types:
  [[nodiscard]] const pdbType* returnType() const { return return_type_; }
  [[nodiscard]] const typevec& arguments() const { return arguments_; }
  [[nodiscard]] bool hasEllipsis() const { return ellipsis_; }
  [[nodiscard]] const typevec& exceptionSpec() const { return exception_spec_; }
  [[nodiscard]] long arraySize() const { return array_size_; }
  /// Enum types: enumerator (name, value) pairs.
  [[nodiscard]] const std::vector<std::pair<std::string, long>>& enumConstants()
      const {
    return enum_constants_;
  }

 private:
  friend class PDB;
  type_t kind_ = TY_OTHER;
  const pdbType* referenced_ = nullptr;
  const pdbClass* referenced_class_ = nullptr;
  const pdbClass* class_ = nullptr;
  bool is_const_ = false;
  bool is_volatile_ = false;
  const pdbType* return_type_ = nullptr;
  typevec arguments_;
  bool ellipsis_ = false;
  typevec exception_spec_;
  long array_size_ = -1;
  std::vector<std::pair<std::string, long>> enum_constants_;
};

// ---------------------------------------------------------------------------
// pdbFatItem: header/body extents
// ---------------------------------------------------------------------------

class pdbFatItem : public pdbItem {
 public:
  using pdbItem::pdbItem;

  [[nodiscard]] const pdbLoc& headBegin() const { return head_begin_; }
  [[nodiscard]] const pdbLoc& headEnd() const { return head_end_; }
  [[nodiscard]] const pdbLoc& bodyBegin() const { return body_begin_; }
  [[nodiscard]] const pdbLoc& bodyEnd() const { return body_end_; }

 protected:
  friend class PDB;
  pdbLoc head_begin_, head_end_, body_begin_, body_end_;
};

// ---------------------------------------------------------------------------
// pdbTemplate
// ---------------------------------------------------------------------------

class pdbTemplate final : public pdbFatItem {
 public:
  using pdbFatItem::pdbFatItem;

  [[nodiscard]] templ_t kind() const { return kind_; }
  [[nodiscard]] const std::string& text() const { return text_; }

 private:
  friend class PDB;
  templ_t kind_ = TE_CLASS;
  std::string text_;
};

// ---------------------------------------------------------------------------
// pdbNamespace
// ---------------------------------------------------------------------------

class pdbNamespace final : public pdbFatItem {
 public:
  using memvec = std::vector<const pdbItem*>;

  using pdbFatItem::pdbFatItem;

  [[nodiscard]] const memvec& members() const { return members_; }
  /// Target name when this is a namespace alias ("" otherwise).
  [[nodiscard]] const std::string& alias() const { return alias_; }

 private:
  friend class PDB;
  memvec members_;
  std::string alias_;
};

// ---------------------------------------------------------------------------
// pdbTemplateItem: entities instantiable from templates
// ---------------------------------------------------------------------------

class pdbTemplateItem : public pdbFatItem {
 public:
  using pdbFatItem::pdbFatItem;

  /// The template this entity was instantiated from (null when none —
  /// including, per the paper's documented limitation, specializations
  /// analyzed without the template-ID extension).
  [[nodiscard]] const pdbTemplate* isTemplate() const { return template_; }
  [[nodiscard]] bool isSpecialized() const { return specialized_; }

 protected:
  friend class PDB;
  const pdbTemplate* template_ = nullptr;
  bool specialized_ = false;
};

// ---------------------------------------------------------------------------
// pdbClass
// ---------------------------------------------------------------------------

/// One base-class edge.
struct pdbBase {
  const pdbClass* base_ptr = nullptr;
  pdbItem::access_t access_ = pdbItem::AC_PUB;
  bool virtual_ = false;

  [[nodiscard]] const pdbClass* base() const { return base_ptr; }
  [[nodiscard]] pdbItem::access_t access() const { return access_; }
  [[nodiscard]] bool isVirtual() const { return virtual_; }
};

/// A data/type member entry.
struct pdbMember {
  std::string name_;
  pdbLoc location_;
  pdbItem::access_t access_ = pdbItem::AC_PUB;
  std::string kind_;  // "var" or "type"
  const pdbType* type_ = nullptr;
  const pdbClass* class_type_ = nullptr;  // when the member's type is a class

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const pdbLoc& location() const { return location_; }
  [[nodiscard]] pdbItem::access_t access() const { return access_; }
  [[nodiscard]] const std::string& kind() const { return kind_; }
  [[nodiscard]] const pdbType* type() const { return type_; }
  [[nodiscard]] const pdbClass* classType() const { return class_type_; }
};

struct pdbFriend {
  bool is_class_ = false;
  std::string name_;

  [[nodiscard]] bool isClass() const { return is_class_; }
  [[nodiscard]] const std::string& name() const { return name_; }
};

class pdbClass final : public pdbTemplateItem {
 public:
  enum class_t { CL_CLASS, CL_STRUCT, CL_UNION };

  using basevec = std::vector<pdbBase>;
  using funcvec = std::vector<const pdbRoutine*>;
  using memvec = std::vector<pdbMember>;
  using friendvec = std::vector<pdbFriend>;
  using classvec = std::vector<const pdbClass*>;

  using pdbTemplateItem::pdbTemplateItem;

  [[nodiscard]] class_t kind() const { return kind_; }
  [[nodiscard]] const basevec& baseClasses() const { return bases_; }
  /// Classes directly derived from this one (inverse of baseClasses).
  [[nodiscard]] const classvec& derivedClasses() const { return derived_; }
  [[nodiscard]] const funcvec& funcMembers() const { return funcs_; }
  [[nodiscard]] const memvec& dataMembers() const { return members_; }
  [[nodiscard]] const friendvec& friends() const { return friends_; }

 private:
  friend class PDB;
  class_t kind_ = CL_CLASS;
  basevec bases_;
  classvec derived_;
  funcvec funcs_;
  memvec members_;
  friendvec friends_;
};

// ---------------------------------------------------------------------------
// pdbRoutine
// ---------------------------------------------------------------------------

/// One call-site edge (Figure 5: (*it)->call(), (*it)->isVirtual()).
class pdbCall {
 public:
  pdbCall(const pdbRoutine* callee, bool is_virtual, pdbLoc loc)
      : callee_(callee), virtual_(is_virtual), location_(loc) {}

  [[nodiscard]] const pdbRoutine* call() const { return callee_; }
  [[nodiscard]] bool isVirtual() const { return virtual_; }
  [[nodiscard]] const pdbLoc& location() const { return location_; }

 private:
  const pdbRoutine* callee_;
  bool virtual_;
  pdbLoc location_;
};

class pdbRoutine final : public pdbTemplateItem {
 public:
  using callvec = std::vector<const pdbCall*>;

  enum link_t { LK_CXX, LK_C };
  enum store_t { ST_NA, ST_STATIC, ST_EXTERN };

  using pdbTemplateItem::pdbTemplateItem;

  /// The routines this routine calls (Figure 5's r->callees()).
  [[nodiscard]] const callvec& callees() const { return callees_; }
  /// Call sites targeting this routine (inverse edges).
  [[nodiscard]] const callvec& callers() const { return callers_; }

  [[nodiscard]] const pdbType* signature() const { return signature_; }
  [[nodiscard]] routine_t kind() const { return kind_; }
  [[nodiscard]] virt_t virtuality() const { return virtuality_; }
  [[nodiscard]] link_t linkage() const { return linkage_; }
  [[nodiscard]] store_t storage() const { return storage_; }
  [[nodiscard]] bool isStatic() const { return static_; }
  [[nodiscard]] bool isInline() const { return inline_; }
  [[nodiscard]] bool isExplicit() const { return explicit_; }
  [[nodiscard]] bool isDefined() const { return defined_; }

 private:
  friend class PDB;
  callvec callees_;
  callvec callers_;
  const pdbType* signature_ = nullptr;
  routine_t kind_ = RO_NORMAL;
  virt_t virtuality_ = VI_NO;
  link_t linkage_ = LK_CXX;
  store_t storage_ = ST_NA;
  bool static_ = false;
  bool inline_ = false;
  bool explicit_ = false;
  bool defined_ = false;
};

// ---------------------------------------------------------------------------
// PDB: an entire program database (paper §3.3)
// ---------------------------------------------------------------------------

class PDB {
 public:
  using filevec = std::vector<const pdbFile*>;
  using routinevec = std::vector<const pdbRoutine*>;
  using classvec = std::vector<const pdbClass*>;
  using typevec = std::vector<const pdbType*>;
  using templatevec = std::vector<const pdbTemplate*>;
  using namespacevec = std::vector<const pdbNamespace*>;
  using macrovec = std::vector<const pdbMacro*>;
  using itemvec = std::vector<const pdbSimpleItem*>;

  PDB();
  ~PDB();
  PDB(PDB&&) noexcept;
  PDB& operator=(PDB&&) noexcept;

  /// Builds the object graph from an in-memory database.
  static PDB fromPdbFile(const pdb::PdbFile& file);
  /// Builds the object graph over an immutable snapshot. Flat copy: item
  /// records are copied, string backings are shared with the snapshot.
  static PDB fromSnapshot(const pdb::SnapshotPtr& snapshot);
  /// Reads a PDB file from disk, auto-detecting the storage format (ASCII
  /// or binary v2); empty PDB + error message on failure.
  static PDB read(const std::string& path);
  /// Lazy variant: materializes only `sections`. The object graph
  /// tolerates the missing cross-references (every lookup is guarded), so
  /// tools that need one slice of a large database skip the rest.
  static PDB read(const std::string& path, pdb::Sections sections);

  /// Writes the database back to the ASCII format.
  bool write(const std::string& path) const;
  void write(std::ostream& os) const;
  /// Writes in an explicit storage format (`--format` in the tools).
  bool write(const std::string& path, pdb::Format format) const;

  /// Merges `other` into this database, renumbering ids and eliminating
  /// duplicate template instantiations (paper Table 2, pdbmerge).
  ///
  /// The object graph is rebuilt lazily: a chain of merges (cxxparse over
  /// many TUs, pdbmerge's reduction tree) pays for one graph construction
  /// at the first accessor call instead of one per merge. Pointers obtained
  /// from the accessor vectors before a merge are invalidated by it, as
  /// before. A PDB object is not internally synchronized — confine each
  /// instance to one thread at a time (the parallel pipeline does).
  void merge(const PDB& other);

  [[nodiscard]] bool valid() const { return error_.empty(); }
  [[nodiscard]] const std::string& errorMessage() const { return error_; }

  [[nodiscard]] const filevec& getFileVec() const { ensureBuilt(); return files_; }
  [[nodiscard]] const routinevec& getRoutineVec() const { ensureBuilt(); return routines_; }
  [[nodiscard]] const classvec& getClassVec() const { ensureBuilt(); return classes_; }
  [[nodiscard]] const typevec& getTypeVec() const { ensureBuilt(); return types_; }
  [[nodiscard]] const templatevec& getTemplateVec() const { ensureBuilt(); return templates_; }
  [[nodiscard]] const namespacevec& getNamespaceVec() const { ensureBuilt(); return namespaces_; }
  [[nodiscard]] const macrovec& getMacroVec() const { ensureBuilt(); return macros_; }
  /// Every item in the database (paper: "a list of all items contained").
  [[nodiscard]] itemvec getItemVec() const;

  /// Files nobody includes — the roots of the source inclusion tree.
  [[nodiscard]] filevec getIncludeTreeRoots() const;
  /// Routines nobody calls — the roots of the static call tree.
  [[nodiscard]] routinevec getCallTreeRoots() const;
  /// Classes with no bases — the roots of the class hierarchy.
  [[nodiscard]] classvec getClassHierarchyRoots() const;

  /// Underlying typed representation (for tools that need raw access).
  [[nodiscard]] const pdb::PdbFile& raw() const { return raw_; }

 private:
  void build();  // constructs the object graph from raw_
  void ensureBuilt() const;  // lazy rebuild after merge/load

  pdb::PdbFile raw_;
  std::string error_;
  mutable bool graph_dirty_ = false;

  std::vector<std::unique_ptr<pdbFile>> file_storage_;
  std::vector<std::unique_ptr<pdbRoutine>> routine_storage_;
  std::vector<std::unique_ptr<pdbClass>> class_storage_;
  std::vector<std::unique_ptr<pdbType>> type_storage_;
  std::vector<std::unique_ptr<pdbTemplate>> template_storage_;
  std::vector<std::unique_ptr<pdbNamespace>> namespace_storage_;
  std::vector<std::unique_ptr<pdbMacro>> macro_storage_;
  std::vector<std::unique_ptr<pdbCall>> call_storage_;

  filevec files_;
  routinevec routines_;
  classvec classes_;
  typevec types_;
  templatevec templates_;
  namespacevec namespaces_;
  macrovec macros_;
};

}  // namespace pdt::ductape
