#include "support/hash.h"

#include <array>
#include <istream>

namespace pdt {

namespace {

// FNV-1a 128-bit parameters (offset basis and prime), as two 64-bit halves.
constexpr std::uint64_t kBasisHi = 0x6c62272e07bb0142ull;
constexpr std::uint64_t kBasisLo = 0x62b821756295c58dull;
constexpr std::uint64_t kPrimeHi = 0x0000000001000000ull;
constexpr std::uint64_t kPrimeLo = 0x000000000000013bull;

constexpr unsigned __int128 make128(std::uint64_t hi, std::uint64_t lo) {
  return (static_cast<unsigned __int128>(hi) << 64) | lo;
}

}  // namespace

std::string Digest128::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i)
    out[static_cast<std::size_t>(i)] = kDigits[(hi >> (60 - 4 * i)) & 0xF];
  for (int i = 0; i < 16; ++i)
    out[static_cast<std::size_t>(16 + i)] = kDigits[(lo >> (60 - 4 * i)) & 0xF];
  return out;
}

Fnv128::Fnv128() : state_(make128(kBasisHi, kBasisLo)) {}

Fnv128& Fnv128::update(std::string_view bytes) {
  constexpr unsigned __int128 prime = make128(kPrimeHi, kPrimeLo);
  unsigned __int128 h = state_;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= prime;
  }
  state_ = h;
  return *this;
}

Fnv128& Fnv128::updateU64(std::uint64_t value) {
  std::array<char, 8> bytes;
  for (int i = 0; i < 8; ++i)
    bytes[static_cast<std::size_t>(i)] = static_cast<char>(value >> (8 * i));
  return update(std::string_view(bytes.data(), bytes.size()));
}

Digest128 Fnv128::digest() const {
  return {static_cast<std::uint64_t>(state_ >> 64),
          static_cast<std::uint64_t>(state_)};
}

std::uint64_t hash64(std::string_view bytes) {
  return Fnv64{}.update(bytes).digest();
}

Digest128 hash128(std::string_view bytes) {
  return Fnv128{}.update(bytes).digest();
}

std::size_t hashStream(Fnv128& hasher, std::istream& is) {
  std::array<char, 64 * 1024> buffer;
  std::size_t total = 0;
  while (is) {
    is.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    const auto got = static_cast<std::size_t>(is.gcount());
    if (got == 0) break;
    hasher.update(std::string_view(buffer.data(), got));
    total += got;
  }
  return total;
}

}  // namespace pdt
