// Fast non-cryptographic content hashing (FNV-1a, 64- and 128-bit).
//
// The build cache keys cache entries by the hash of a TU's full
// preprocessed input, so the hasher must be deterministic across runs,
// platforms, and processes — no pointer mixing, no seeding. FNV-1a fits:
// byte-at-a-time, well-known fixed vectors to test against, and the
// 128-bit variant gives collision headroom for content addressing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace pdt {

/// Streaming 64-bit FNV-1a. update() may be called any number of times;
/// the digest of the concatenation equals the digest of one-shot input.
class Fnv64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  Fnv64& update(std::string_view bytes) {
    for (const char c : bytes) {
      state_ ^= static_cast<unsigned char>(c);
      state_ *= kPrime;
    }
    return *this;
  }
  /// Hashes `value`'s little-endian byte representation (length framing).
  Fnv64& updateU64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      state_ ^= static_cast<unsigned char>(value >> (8 * i));
      state_ *= kPrime;
    }
    return *this;
  }
  [[nodiscard]] std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

/// A 128-bit digest as two 64-bit halves (hi/lo of the FNV state).
struct Digest128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Digest128&, const Digest128&) = default;
  /// 32 lowercase hex characters, hi half first — stable across runs, so
  /// it doubles as an on-disk cache entry name.
  [[nodiscard]] std::string hex() const;
};

/// Streaming 128-bit FNV-1a, same contract as Fnv64.
class Fnv128 {
 public:
  Fnv128();

  Fnv128& update(std::string_view bytes);
  Fnv128& updateU64(std::uint64_t value);
  [[nodiscard]] Digest128 digest() const;

 private:
  unsigned __int128 state_;
};

/// One-shot conveniences.
[[nodiscard]] std::uint64_t hash64(std::string_view bytes);
[[nodiscard]] Digest128 hash128(std::string_view bytes);

/// Streams the remainder of `is` through `hasher` in fixed-size chunks;
/// returns the number of bytes consumed.
std::size_t hashStream(Fnv128& hasher, std::istream& is);

}  // namespace pdt
