// Read-only memory-mapped file buffer with a portable fallback.
//
// The zero-copy PDB read path (docs/PDB_FORMAT.md §zero-copy) serves
// string-table entries and records as views straight over the mapping, so
// the buffer must (a) stay immutable for its whole life and (b) be cheap
// to share — a PdbFile adopts the buffer as a backing and keeps it alive
// for as long as any item view may point into it.
//
// On POSIX hosts open() maps the file PROT_READ/MAP_PRIVATE; pages fault
// in on first touch, which is what lets a lazy section read skip the
// payloads it never asks for. Where mmap is unavailable (or fails — e.g.
// a file truncated mid-write by a crashed producer) the same call falls
// back to reading the whole file into an owned heap buffer, so callers
// never branch on platform.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace pdt::support {

class MmapBuffer {
 public:
  /// Opens `path` read-only. Prefers mmap (when `allow_mmap`), falls back
  /// to a whole-file read; nullopt only when the file cannot be opened or
  /// read at all. Set `populate` when the caller will touch every byte
  /// (a full-section read): the mapping is pre-faulted in one go instead
  /// of one soft fault per page, and the kernel is told the access is
  /// sequential. Lazy masked reads must leave it false — pre-faulting
  /// would defeat skipping unrequested sections.
  [[nodiscard]] static std::optional<MmapBuffer> open(const std::string& path,
                                                     bool allow_mmap = true,
                                                     bool populate = false);

  MmapBuffer() = default;
  MmapBuffer(MmapBuffer&& other) noexcept { *this = std::move(other); }
  MmapBuffer& operator=(MmapBuffer&& other) noexcept;
  MmapBuffer(const MmapBuffer&) = delete;
  MmapBuffer& operator=(const MmapBuffer&) = delete;
  ~MmapBuffer();

  /// The file contents. Valid for the lifetime of this buffer.
  [[nodiscard]] std::string_view view() const {
    return {static_cast<const char*>(data_), size_};
  }

  /// True when the contents are served by an actual memory mapping (the
  /// fallback path reports false).
  [[nodiscard]] bool mapped() const { return mapped_; }

  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  const void* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;              // data_ is an mmap region
  std::unique_ptr<char[]> owned_;    // fallback storage (mapped_ == false)
};

}  // namespace pdt::support
