#include "support/interner.h"

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_set>

namespace pdt {
namespace {

struct ViewHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

struct Table {
  std::shared_mutex mutex;
  // Views in `set` point into `storage`; deque never relocates elements.
  std::deque<std::string> storage;
  std::unordered_set<std::string_view, ViewHash, std::equal_to<>> set;
};

Table& table() {
  static Table* t = new Table;  // immortal: views must outlive everything
  return *t;
}

}  // namespace

std::string_view internString(std::string_view text) {
  if (text.empty()) return {};
  Table& t = table();
  {
    std::shared_lock lock(t.mutex);
    if (const auto it = t.set.find(text); it != t.set.end()) return *it;
  }
  std::unique_lock lock(t.mutex);
  if (const auto it = t.set.find(text); it != t.set.end()) return *it;
  const std::string& owned = t.storage.emplace_back(text);
  t.set.insert(owned);
  return owned;
}

std::size_t internedStringCount() {
  Table& t = table();
  std::shared_lock lock(t.mutex);
  return t.set.size();
}

}  // namespace pdt
