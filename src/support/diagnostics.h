// Diagnostic collection for the frontend and tools.
//
// All components report problems through a DiagnosticEngine instead of
// writing to stderr directly, so library embedders (TAU, SILOON, tests)
// can inspect, count, or render diagnostics as they see fit.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/source_location.h"

namespace pdt {

class SourceManager;

enum class Severity { Note, Warning, Error };

[[nodiscard]] std::string_view toString(Severity s);

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLocation location;
  std::string message;
};

class DiagnosticEngine {
 public:
  void report(Severity severity, SourceLocation loc, std::string message);

  void error(SourceLocation loc, std::string message) {
    report(Severity::Error, loc, std::move(message));
  }
  void warning(SourceLocation loc, std::string message) {
    report(Severity::Warning, loc, std::move(message));
  }
  void note(SourceLocation loc, std::string message) {
    report(Severity::Note, loc, std::move(message));
  }

  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }
  [[nodiscard]] std::size_t errorCount() const { return errors_; }
  [[nodiscard]] std::size_t warningCount() const { return warnings_; }
  [[nodiscard]] bool hasErrors() const { return errors_ > 0; }

  void clear();

  /// Renders every diagnostic as "file:line:col: severity: message".
  void print(std::ostream& os, const SourceManager& sm) const;

  /// Optional hook invoked on every report (e.g. fail-fast in tests).
  void setHandler(std::function<void(const Diagnostic&)> handler) {
    handler_ = std::move(handler);
  }

 private:
  std::vector<Diagnostic> diags_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
  std::function<void(const Diagnostic&)> handler_;
};

}  // namespace pdt
