#include "support/diagnostics.h"

#include <ostream>

#include "support/source_manager.h"

namespace pdt {

std::string_view toString(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "unknown";
}

void DiagnosticEngine::report(Severity severity, SourceLocation loc,
                              std::string message) {
  if (severity == Severity::Error) ++errors_;
  if (severity == Severity::Warning) ++warnings_;
  diags_.push_back({severity, loc, std::move(message)});
  if (handler_) handler_(diags_.back());
}

void DiagnosticEngine::clear() {
  diags_.clear();
  errors_ = 0;
  warnings_ = 0;
}

void DiagnosticEngine::print(std::ostream& os, const SourceManager& sm) const {
  for (const Diagnostic& d : diags_) {
    os << sm.describe(d.location) << ": " << toString(d.severity) << ": "
       << d.message << '\n';
  }
}

}  // namespace pdt
