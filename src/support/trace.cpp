#include "support/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <mutex>
#include <ostream>

#include "support/text.h"

namespace pdt::trace {

namespace {

constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::kCount);

constexpr std::array<std::string_view, kNumCounters> kCounterNames = {
    "lex.tokens",
    "lex.arena_bytes",
    "pp.includes",
    "pp.macro_expansions",
    "sema.class_instantiations",
    "sema.func_instantiations",
    "sema.bodies_instantiated",
    "sema.bodies_skipped",
    "il.items",
    "pdb.files_read",
    "pdb.items_read",
    "pdb.files_written",
    "pdb.items_written",
    "pdb.sections_skipped",
    "pdb.mmap.bytes_mapped",
    "merge.merges",
    "merge.duplicates_elided",
    "merge.shards",
    "merge.spills",
    "driver.tus",
    "diag.errors",
    "diag.warnings",
    "check.findings",
};

/// One thread's event buffer. Owned by the session so events survive the
/// thread (pool workers are joined before the tool flushes).
struct Buffer {
  std::uint32_t tid = 0;
  std::string name;
  std::vector<Event> events;
};

/// Process-wide session state. Buffers are registered once per thread under
/// the mutex; after that, recording touches only thread-local storage.
struct Session {
  std::atomic<bool> collecting{false};
  std::atomic<std::uint64_t> generation{1};
  std::chrono::steady_clock::time_point epoch{};
  std::mutex mutex;  // guards buffers and global_counters
  std::vector<std::unique_ptr<Buffer>> buffers;
  CounterBlock global_counters;
};

Session& session() {
  static Session s;
  return s;
}

struct TlsState {
  Buffer* buffer = nullptr;
  std::uint64_t buffer_gen = 0;
  CounterBlock* block = nullptr;  // CounterScope target
  bool suppressed = false;        // CounterScope(nullptr) active
};

thread_local TlsState tls;

Buffer& localBuffer() {
  Session& s = session();
  const std::uint64_t gen = s.generation.load(std::memory_order_acquire);
  if (tls.buffer != nullptr && tls.buffer_gen == gen) return *tls.buffer;
  std::lock_guard lock(s.mutex);
  auto buf = std::make_unique<Buffer>();
  buf->tid = static_cast<std::uint32_t>(s.buffers.size());
  buf->name = "thread-" + std::to_string(buf->tid);
  tls.buffer = buf.get();
  tls.buffer_gen = gen;
  s.buffers.push_back(std::move(buf));
  return *tls.buffer;
}

}  // namespace

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

std::string_view counterName(Counter c) {
  return kCounterNames[static_cast<std::size_t>(c)];
}

CounterBlock& CounterBlock::operator+=(const CounterBlock& o) {
  for (std::size_t i = 0; i < kNumCounters; ++i) values[i] += o.values[i];
  for (const auto& [dim, keys] : o.keyed) {
    auto& mine = keyed[dim];
    for (const auto& [key, n] : keys) mine[key] += n;
  }
  return *this;
}

std::string CounterBlock::serialize() const {
  std::string out;
  out.reserve(kNumCounters * 32);
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    out += "counter ";
    out += kCounterNames[i];
    out += ' ';
    out += std::to_string(values[i]);
    out += '\n';
  }
  for (const auto& [dim, keys] : keyed) {
    for (const auto& [key, n] : keys) {
      out += "keyed ";
      out += dim;
      out += '|';
      out += key;
      out += ' ';
      out += std::to_string(n);
      out += '\n';
    }
  }
  return out;
}

std::optional<CounterBlock> CounterBlock::deserialize(std::string_view text) {
  CounterBlock block;
  const auto parse_u64 = [](std::string_view t, std::uint64_t& out) {
    if (t.empty()) return false;
    out = 0;
    for (const char c : t) {
      if (c < '0' || c > '9') return false;
      out = out * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return true;
  };
  for (std::string_view line : split(text, '\n')) {
    if (line.empty()) continue;
    const auto sp1 = line.find(' ');
    const auto sp2 = line.rfind(' ');
    if (sp1 == std::string_view::npos || sp2 <= sp1) return std::nullopt;
    const std::string_view tag = line.substr(0, sp1);
    const std::string_view name = line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::uint64_t value = 0;
    if (!parse_u64(line.substr(sp2 + 1), value)) return std::nullopt;
    if (tag == "counter") {
      const auto it = std::find(kCounterNames.begin(), kCounterNames.end(), name);
      if (it == kCounterNames.end()) return std::nullopt;
      block.values[static_cast<std::size_t>(it - kCounterNames.begin())] = value;
    } else if (tag == "keyed") {
      const auto bar = name.find('|');
      if (bar == std::string_view::npos) return std::nullopt;
      block.keyed[std::string(name.substr(0, bar))]
                 [std::string(name.substr(bar + 1))] = value;
    } else {
      return std::nullopt;
    }
  }
  return block;
}

void count(Counter c, std::uint64_t n) {
  if (n == 0 || tls.suppressed) return;
  if (tls.block != nullptr) {
    tls.block->values[static_cast<std::size_t>(c)] += n;
    return;
  }
  Session& s = session();
  std::lock_guard lock(s.mutex);
  s.global_counters.values[static_cast<std::size_t>(c)] += n;
}

void countKey(std::string_view dim, std::string_view key, std::uint64_t n) {
  if (n == 0 || tls.suppressed) return;
  if (tls.block != nullptr) {
    tls.block->keyed[std::string(dim)][std::string(key)] += n;
    return;
  }
  Session& s = session();
  std::lock_guard lock(s.mutex);
  s.global_counters.keyed[std::string(dim)][std::string(key)] += n;
}

CounterScope::CounterScope(CounterBlock* block)
    : prev_(tls.block), prev_suppressed_(tls.suppressed) {
  tls.block = block;
  tls.suppressed = block == nullptr;
}

CounterScope::~CounterScope() {
  tls.block = prev_;
  tls.suppressed = prev_suppressed_;
}

CounterBlock globalCounters() {
  Session& s = session();
  std::lock_guard lock(s.mutex);
  return s.global_counters;
}

void resetGlobalCounters() {
  Session& s = session();
  std::lock_guard lock(s.mutex);
  s.global_counters = CounterBlock{};
}

// ---------------------------------------------------------------------------
// Timing events
// ---------------------------------------------------------------------------

bool collecting() {
  return session().collecting.load(std::memory_order_relaxed);
}

void setCollecting(bool on) {
  Session& s = session();
  if (on) s.epoch = std::chrono::steady_clock::now();
  s.collecting.store(on, std::memory_order_relaxed);
}

void resetEvents() {
  Session& s = session();
  std::lock_guard lock(s.mutex);
  // Invalidate every thread's cached buffer pointer before freeing.
  s.generation.fetch_add(1, std::memory_order_release);
  s.buffers.clear();
}

void setThreadName(std::string_view name) {
  localBuffer().name = std::string(name);
}

std::uint64_t nowUs() {
  if (!collecting()) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - session().epoch)
          .count());
}

void emitComplete(const char* name, std::uint64_t start_us, std::uint64_t dur_us,
                  std::string_view detail) {
  if (!collecting()) return;
  Buffer& buf = localBuffer();
  Event e;
  e.name = name;
  e.detail = std::string(detail);
  e.ts_us = start_us;
  e.dur_us = dur_us;
  e.tid = buf.tid;
  e.kind = 'X';
  buf.events.push_back(std::move(e));
}

void counterSample(const char* track, std::int64_t value) {
  if (!collecting()) return;
  Buffer& buf = localBuffer();
  Event e;
  e.name = track;
  e.ts_us = nowUs();
  e.value = value;
  e.tid = buf.tid;
  e.kind = 'C';
  buf.events.push_back(std::move(e));
}

ScopedSpan::ScopedSpan(const char* name, std::string_view detail)
    : name_(collecting() ? name : nullptr) {
  if (name_ == nullptr) return;
  detail_ = std::string(detail);
  start_us_ = nowUs();
}

ScopedSpan::~ScopedSpan() {
  if (name_ == nullptr) return;
  const std::uint64_t end = nowUs();
  emitComplete(name_, start_us_, end >= start_us_ ? end - start_us_ : 0, detail_);
}

std::vector<Event> snapshotEvents() {
  Session& s = session();
  std::lock_guard lock(s.mutex);
  std::vector<Event> out;
  std::size_t total = 0;
  for (const auto& buf : s.buffers) total += buf->events.size();
  out.reserve(total);
  for (const auto& buf : s.buffers)
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  return out;
}

std::string threadName(std::uint32_t tid) {
  Session& s = session();
  std::lock_guard lock(s.mutex);
  if (tid < s.buffers.size()) return s.buffers[tid]->name;
  return "thread-" + std::to_string(tid);
}

void writeChromeTrace(std::ostream& os) {
  Session& s = session();
  std::lock_guard lock(s.mutex);
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n  ";
  };
  for (const auto& buf : s.buffers) {
    sep();
    os << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << buf->tid
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
       << escapeJson(buf->name) << "\"}}";
  }
  for (const auto& buf : s.buffers) {
    for (const Event& e : buf->events) {
      sep();
      if (e.kind == 'C') {
        os << "{\"ph\": \"C\", \"pid\": 1, \"tid\": " << e.tid << ", \"name\": \""
           << escapeJson(e.name) << "\", \"ts\": " << e.ts_us
           << ", \"args\": {\"value\": " << e.value << "}}";
      } else {
        os << "{\"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid << ", \"name\": \""
           << escapeJson(e.name) << "\", \"cat\": \"pdt\", \"ts\": " << e.ts_us
           << ", \"dur\": " << e.dur_us;
        if (!e.detail.empty())
          os << ", \"args\": {\"detail\": \"" << escapeJson(e.detail) << "\"}";
        os << "}";
      }
    }
  }
  os << "\n]}\n";
}

bool writeChromeTraceFile(const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  writeChromeTrace(os);
  return os.good();
}

// ---------------------------------------------------------------------------
// StatsReport
// ---------------------------------------------------------------------------

namespace {

/// Span names that form the per-TU phase rows: each is emitted with
/// detail = the TU's path, exactly once per TU (docs/OBSERVABILITY.md).
constexpr std::array<std::string_view, 8> kTuPhaseNames = {
    "tu.compile",  "cache.scan",     "cache.fetch", "cache.store",
    "frontend.lex", "frontend.parse", "sema.finalize", "il.analyze",
};

bool isTuPhase(std::string_view name) {
  return std::find(kTuPhaseNames.begin(), kTuPhaseNames.end(), name) !=
         kTuPhaseNames.end();
}

}  // namespace

StatsReport::StatsReport(std::string tool) : tool_(std::move(tool)) {}

void StatsReport::setCounters(CounterBlock counters) {
  counters_ = std::move(counters);
}

void StatsReport::addSection(std::string name,
                             std::vector<std::pair<std::string, std::uint64_t>> kv) {
  sections_.push_back({std::move(name), std::move(kv)});
}

void StatsReport::captureTimings() {
  const std::vector<Event> events = snapshotEvents();
  if (events.empty()) return;
  has_timings_ = true;

  // Phase aggregation by span name.
  std::map<std::string_view, SpanStats> by_name;
  // Per-TU rows: phase name -> us, grouped by span detail.
  std::map<std::string, std::map<std::string_view, std::uint64_t>> by_tu;
  // Per-thread interval lists for busy-time union.
  std::map<std::uint32_t, std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      intervals;
  std::map<std::uint32_t, std::uint64_t> span_counts;

  for (const Event& e : events) {
    if (e.kind != 'X') continue;
    wall_us_ = std::max(wall_us_, e.ts_us + e.dur_us);
    SpanStats& agg = by_name[e.name];
    if (agg.count == 0) {
      agg.name = e.name;
      agg.min_us = e.dur_us;
    }
    ++agg.count;
    agg.total_us += e.dur_us;
    agg.min_us = std::min(agg.min_us, e.dur_us);
    agg.max_us = std::max(agg.max_us, e.dur_us);
    if (!e.detail.empty() && isTuPhase(e.name))
      by_tu[e.detail][e.name] += e.dur_us;
    intervals[e.tid].emplace_back(e.ts_us, e.ts_us + e.dur_us);
    ++span_counts[e.tid];
  }

  phases_.reserve(by_name.size());
  for (auto& [name, agg] : by_name) phases_.push_back(std::move(agg));
  std::sort(phases_.begin(), phases_.end(),
            [](const SpanStats& a, const SpanStats& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.name < b.name;
            });

  tus_.reserve(by_tu.size());
  for (auto& [file, phase_map] : by_tu) {
    TuRow row;
    row.file = file;
    for (const std::string_view name : kTuPhaseNames) {
      if (const auto it = phase_map.find(name); it != phase_map.end())
        row.phase_us.emplace_back(std::string(name), it->second);
    }
    tus_.push_back(std::move(row));
  }

  for (auto& [tid, ivs] : intervals) {
    // Busy time is the union of span intervals: nested spans (parse inside
    // tu.compile) must not double-count.
    std::sort(ivs.begin(), ivs.end());
    std::uint64_t busy = 0, cur_begin = 0, cur_end = 0;
    bool open = false;
    for (const auto& [b, e] : ivs) {
      if (!open || b > cur_end) {
        if (open) busy += cur_end - cur_begin;
        cur_begin = b;
        cur_end = e;
        open = true;
      } else {
        cur_end = std::max(cur_end, e);
      }
    }
    if (open) busy += cur_end - cur_begin;
    threads_.push_back({tid, threadName(tid), busy, span_counts[tid]});
  }
}

void StatsReport::renderText(std::ostream& os) const {
  os << "== " << tool_ << " stats ==\n";
  if (counters_) {
    os << "counters:\n";
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      os << "  " << std::left << std::setw(34) << kCounterNames[i]
         << counters_->values[i] << '\n';
    }
    for (const auto& [dim, keys] : counters_->keyed) {
      os << "  " << dim << ":\n";
      for (const auto& [key, n] : keys) {
        os << "    " << std::left << std::setw(40) << key << n << '\n';
      }
    }
  }
  for (const Section& sec : sections_) {
    os << sec.name << ":";
    for (std::size_t i = 0; i < sec.kv.size(); ++i) {
      os << (i == 0 ? " " : ", ") << sec.kv[i].first << "=" << sec.kv[i].second;
    }
    os << '\n';
  }
  if (!has_timings_) return;
  os << "phases (wall " << wall_us_ << " us):\n";
  os << "  " << std::left << std::setw(34) << "name" << std::right
     << std::setw(8) << "count" << std::setw(12) << "total_us" << std::setw(10)
     << "avg_us" << std::setw(10) << "max_us" << '\n';
  for (const SpanStats& p : phases_) {
    os << "  " << std::left << std::setw(34) << p.name << std::right
       << std::setw(8) << p.count << std::setw(12) << p.total_us
       << std::setw(10) << (p.count > 0 ? p.total_us / p.count : 0)
       << std::setw(10) << p.max_us << '\n';
  }
  if (!tus_.empty()) {
    os << "per-TU phases:\n";
    for (const TuRow& row : tus_) {
      os << "  " << row.file << ":";
      for (std::size_t i = 0; i < row.phase_us.size(); ++i) {
        os << (i == 0 ? " " : ", ") << row.phase_us[i].first << " "
           << row.phase_us[i].second << " us";
      }
      os << '\n';
    }
  }
  if (!threads_.empty()) {
    os << "threads:\n";
    for (const ThreadRow& t : threads_) {
      os << "  " << t.name << ": busy " << t.busy_us << " us, " << t.spans
         << " span" << (t.spans == 1 ? "" : "s") << '\n';
    }
  }
}

void StatsReport::renderJson(std::ostream& os) const {
  os << "{\n  \"tool\": \"" << escapeJson(tool_) << "\"";
  if (counters_) {
    // The counter object is the deterministic section: fixed slot order,
    // sorted keyed dimensions, always-present "keyed" — byte-identical
    // for any -j and for warm vs cold cache runs.
    os << ",\n  \"counters\": {";
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      os << (i == 0 ? "" : ",") << "\n    \"" << kCounterNames[i]
         << "\": " << counters_->values[i];
    }
    os << ",\n    \"keyed\": {";
    bool first_dim = true;
    for (const auto& [dim, keys] : counters_->keyed) {
      os << (first_dim ? "" : ",") << "\n      \"" << escapeJson(dim) << "\": {";
      first_dim = false;
      bool first_key = true;
      for (const auto& [key, n] : keys) {
        os << (first_key ? "" : ",") << "\n        \"" << escapeJson(key)
           << "\": " << n;
        first_key = false;
      }
      os << (first_key ? "}" : "\n      }");
    }
    os << (first_dim ? "}" : "\n    }");
    os << "\n  }";
  }
  for (const Section& sec : sections_) {
    os << ",\n  \"" << escapeJson(sec.name) << "\": {";
    for (std::size_t i = 0; i < sec.kv.size(); ++i) {
      os << (i == 0 ? "" : ",") << "\n    \"" << escapeJson(sec.kv[i].first)
         << "\": " << sec.kv[i].second;
    }
    os << "\n  }";
  }
  if (has_timings_) {
    os << ",\n  \"timings\": {\n    \"wall_us\": " << wall_us_;
    os << ",\n    \"phases\": [";
    for (std::size_t i = 0; i < phases_.size(); ++i) {
      const SpanStats& p = phases_[i];
      os << (i == 0 ? "" : ",") << "\n      {\"name\": \"" << escapeJson(p.name)
         << "\", \"count\": " << p.count << ", \"total_us\": " << p.total_us
         << ", \"min_us\": " << p.min_us << ", \"max_us\": " << p.max_us << "}";
    }
    os << "\n    ],\n    \"tus\": [";
    for (std::size_t i = 0; i < tus_.size(); ++i) {
      const TuRow& row = tus_[i];
      os << (i == 0 ? "" : ",") << "\n      {\"file\": \"" << escapeJson(row.file)
         << "\", \"phases\": {";
      for (std::size_t j = 0; j < row.phase_us.size(); ++j) {
        os << (j == 0 ? "" : ", ") << "\"" << row.phase_us[j].first
           << "\": " << row.phase_us[j].second;
      }
      os << "}}";
    }
    os << "\n    ],\n    \"threads\": [";
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      const ThreadRow& t = threads_[i];
      os << (i == 0 ? "" : ",") << "\n      {\"tid\": " << t.tid
         << ", \"name\": \"" << escapeJson(t.name) << "\", \"busy_us\": "
         << t.busy_us << ", \"spans\": " << t.spans << "}";
    }
    os << "\n    ]\n  }";
  }
  os << "\n}\n";
}

// ---------------------------------------------------------------------------
// ToolObservability
// ---------------------------------------------------------------------------

bool ToolObservability::parseFlag(std::string_view arg, const char* next,
                                  bool& used_next, std::string& error) {
  used_next = false;
  if (arg == "--stats") {
    stats = true;
    return true;
  }
  if (arg.rfind("--stats=", 0) == 0) {
    const std::string_view fmt = arg.substr(8);
    if (fmt == "json") {
      stats = true;
      json = true;
    } else if (fmt == "text") {
      stats = true;
      json = false;
    } else {
      error = concat({"unknown stats format '", fmt, "' (expected text or json)"});
    }
    return true;
  }
  if (arg == "--stats-out") {
    if (next == nullptr) {
      error = "--stats-out requires a value";
      return true;
    }
    stats_out = next;
    used_next = true;
    return true;
  }
  if (arg.rfind("--stats-out=", 0) == 0) {
    stats_out = std::string(arg.substr(12));
    if (stats_out.empty()) error = "--stats-out requires a value";
    return true;
  }
  if (arg == "--trace-out") {
    if (next == nullptr) {
      error = "--trace-out requires a value";
      return true;
    }
    trace_out = next;
    used_next = true;
    return true;
  }
  if (arg.rfind("--trace-out=", 0) == 0) {
    trace_out = std::string(arg.substr(12));
    if (trace_out.empty()) error = "--trace-out requires a value";
    return true;
  }
  return false;
}

void ToolObservability::begin() const {
  if (!wanted()) return;
  setCollecting(true);
  setThreadName("main");
}

bool ToolObservability::finish(StatsReport& report) const {
  bool ok = true;
  if (stats || !stats_out.empty()) {
    report.captureTimings();
    if (!stats_out.empty()) {
      std::ofstream os(stats_out, std::ios::binary | std::ios::trunc);
      if (!os) {
        std::cerr << "cannot write stats file '" << stats_out << "'\n";
        ok = false;
      } else {
        json ? report.renderJson(os) : report.renderText(os);
        ok = os.good() && ok;
      }
    }
    if (stats) {
      json ? report.renderJson(std::cerr) : report.renderText(std::cerr);
    }
  }
  if (!trace_out.empty() && !writeChromeTraceFile(trace_out)) {
    std::cerr << "cannot write trace file '" << trace_out << "'\n";
    ok = false;
  }
  return ok;
}

}  // namespace pdt::trace
