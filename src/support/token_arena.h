// TokenArena: bump allocator backing synthesized token spellings.
//
// Token text is a std::string_view end-to-end (lex/token.h). Directly
// lexed tokens view the SourceManager's file contents, which live for the
// whole translation unit. Spellings that exist in no file — macro
// expansions that paste or stringize, __LINE__/__FILE__, -D predefines,
// splice-cleaned identifiers — need equally stable backing, which this
// arena provides: chunks are never freed or reallocated while the arena
// lives, so a view handed out by intern()/concat() stays valid even as
// the arena grows (the PR-4 UAF class cannot recur). One arena per TU;
// the Preprocessor owns (or borrows) it and every synthesized spelling
// routes through it, making per-token heap allocation zero on the lexing
// hot path.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

namespace pdt {

class TokenArena {
 public:
  TokenArena() = default;

  // Moving transfers chunk ownership; views into the source arena remain
  // valid because the chunks themselves do not move.
  TokenArena(TokenArena&&) noexcept = default;
  TokenArena& operator=(TokenArena&&) noexcept = default;
  TokenArena(const TokenArena&) = delete;
  TokenArena& operator=(const TokenArena&) = delete;

  /// Copies `text` into the arena; the returned view lives as long as the
  /// arena does.
  std::string_view intern(std::string_view text);

  /// Arena-backed `a + b` in one allocation (token pasting).
  std::string_view concat(std::string_view a, std::string_view b);

  /// Total bytes handed out (the lex.arena_bytes counter).
  [[nodiscard]] std::size_t bytesUsed() const { return total_used_; }
  [[nodiscard]] std::size_t chunkCount() const { return chunks_.size(); }

 private:
  char* allocate(std::size_t n);

  static constexpr std::size_t kChunkSize = 64 * 1024;

  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t capacity = 0;
  };
  std::vector<Chunk> chunks_;
  std::size_t used_ = 0;  // bytes consumed in the current (last) chunk
  std::size_t total_used_ = 0;
};

}  // namespace pdt
