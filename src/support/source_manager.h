// Registry of source files: owns file contents, assigns FileIds, resolves
// #include paths. Supports in-memory ("virtual") files so tests and
// benchmarks can run without touching the filesystem.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/source_location.h"

namespace pdt {

class SourceManager {
 public:
  SourceManager() = default;

  SourceManager(const SourceManager&) = delete;
  SourceManager& operator=(const SourceManager&) = delete;

  /// Registers an in-memory file under `name`. If a file of that name is
  /// already registered its previous content is kept and its id returned.
  FileId addVirtualFile(std::string name, std::string content);

  /// Loads `path` from disk (resolving against the search directories if
  /// relative). Returns nullopt when the file cannot be read.
  std::optional<FileId> loadFile(const std::string& path);

  /// Appends a directory to the #include search list (the -I path).
  void addSearchDir(std::string dir);

  /// Resolves an #include spelling to a FileId. `angled` selects the
  /// <...> form (search dirs only); the "..." form first tries the
  /// directory of `includer`, then virtual files, then search dirs.
  std::optional<FileId> resolveInclude(std::string_view spelling, bool angled,
                                       FileId includer);

  [[nodiscard]] const std::string& name(FileId id) const;
  [[nodiscard]] std::string_view content(FileId id) const;
  [[nodiscard]] bool known(FileId id) const;
  [[nodiscard]] std::size_t fileCount() const { return files_.size(); }

  /// All registered ids in registration order.
  [[nodiscard]] std::vector<FileId> allFiles() const;

  /// Returns the text of line `line` (1-based) of `id`, without the
  /// trailing newline; empty view when out of range.
  [[nodiscard]] std::string_view lineText(FileId id, std::uint32_t line) const;

  /// "file:line:col" rendering for diagnostics.
  [[nodiscard]] std::string describe(SourceLocation loc) const;

 private:
  struct File {
    std::string name;
    std::string content;
    std::vector<std::uint32_t> line_offsets;  // offset of each line start
  };

  FileId registerFile(std::string name, std::string content);
  [[nodiscard]] const File& get(FileId id) const;

  // A deque, not a vector: registering file N must never move files 0..N-1.
  // Token text is a string_view into file content (lex/token.h), so the
  // content strings — including the inline buffers of short (SSO) contents —
  // have to stay put as the table grows mid-TU (#include loads new files
  // while earlier files' tokens are already live downstream).
  std::deque<File> files_;
  std::unordered_map<std::string, FileId> by_name_;
  std::vector<std::string> search_dirs_;
};

}  // namespace pdt
