#include "support/text.h"

#include <cctype>
#include <cstdint>

namespace pdt {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> splitWhitespace(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    const std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string replaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  std::string out;
  out.reserve(text.size());
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string escapePdbString(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': break;  // normalized away
      default: out.push_back(c);
    }
  }
  return out;
}

std::string unescapePdbString(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      ++i;
      out.push_back(text[i] == 'n' ? '\n' : text[i]);
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

std::string escapeHtml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string escapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  return out;
}

bool parseUint(std::string_view text, std::uint32_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > UINT32_MAX) return false;
  }
  out = static_cast<std::uint32_t>(value);
  return true;
}

}  // namespace pdt
