#include "support/thread_pool.h"

#include <algorithm>

#include "support/trace.h"

namespace pdt {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::defaultConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::enqueue(std::function<void()> job) {
  Job entry{std::move(job), 0};
  const bool collecting = trace::collecting();
  if (collecting) entry.enqueue_us = trace::nowUs();
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(entry));
    if (collecting) {
      trace::counterSample("pool.queue_depth",
                           static_cast<std::int64_t>(queue_.size()));
    }
  }
  wake_.notify_one();
}

void ThreadPool::workerLoop(std::size_t index) {
  if (trace::collecting())
    trace::setThreadName("worker-" + std::to_string(index));
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop();
      if (trace::collecting()) {
        trace::counterSample("pool.queue_depth",
                             static_cast<std::int64_t>(queue_.size()));
      }
    }
    if (job.enqueue_us != 0) {
      // Queue latency: enqueue -> dequeue, attributed to this worker.
      const std::uint64_t now = trace::nowUs();
      trace::emitComplete("pool.wait", job.enqueue_us,
                          now >= job.enqueue_us ? now - job.enqueue_us : 0);
    }
    PDT_TRACE_SCOPE("pool.task");
    job.fn();  // packaged_task: exceptions land in the future
  }
}

}  // namespace pdt
