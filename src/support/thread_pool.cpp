#include "support/thread_pool.h"

#include <algorithm>

namespace pdt {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::defaultConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(job));
  }
  wake_.notify_one();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();  // packaged_task: exceptions land in the future
  }
}

}  // namespace pdt
