#include "support/token_arena.h"

#include <algorithm>
#include <cstring>

namespace pdt {

char* TokenArena::allocate(std::size_t n) {
  if (chunks_.empty() || used_ + n > chunks_.back().capacity) {
    Chunk c;
    c.capacity = std::max(kChunkSize, n);
    c.data = std::make_unique<char[]>(c.capacity);
    chunks_.push_back(std::move(c));
    used_ = 0;
  }
  char* out = chunks_.back().data.get() + used_;
  used_ += n;
  total_used_ += n;
  return out;
}

std::string_view TokenArena::intern(std::string_view text) {
  if (text.empty()) return {};
  char* out = allocate(text.size());
  std::memcpy(out, text.data(), text.size());
  return {out, text.size()};
}

std::string_view TokenArena::concat(std::string_view a, std::string_view b) {
  if (a.empty()) return intern(b);
  if (b.empty()) return intern(a);
  char* out = allocate(a.size() + b.size());
  std::memcpy(out, a.data(), a.size());
  std::memcpy(out + a.size(), b.data(), b.size());
  return {out, a.size() + b.size()};
}

}  // namespace pdt
