// Process-wide string interning for the PDB attribute vocabulary.
//
// The ASCII PDB format repeats a small set of attribute tokens millions of
// times across a large build: access specifiers ("pub"/"prot"/"priv"/"NA"),
// linkage ("C++"/"C"), routine/class/type kinds, qualifiers, builtin
// spellings. Storing each occurrence as its own std::string makes reading a
// database allocation-bound. Instead, the typed PDB model keeps these fields
// as std::string_view and the reader routes every parsed token through
// internString(), which returns a view into storage with static lifetime.
//
// Interned views therefore never dangle: they stay valid across PdbFile
// copies, moves, and merges, and can be shared freely between databases and
// threads. The table is append-only and guarded by a shared mutex, so
// concurrent readers (the parallel compile/merge pipeline) only serialize on
// a genuinely new token — which, for the bounded attribute vocabulary,
// stops happening almost immediately.
#pragma once

#include <string_view>

namespace pdt {

/// Returns a stable view of `text` backed by the process-wide intern table.
/// Safe to call from any thread.
[[nodiscard]] std::string_view internString(std::string_view text);

/// Number of distinct strings interned so far (observability/tests).
[[nodiscard]] std::size_t internedStringCount();

}  // namespace pdt
