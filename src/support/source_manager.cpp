#include "support/source_manager.h"

#include <cassert>
#include <fstream>
#include <sstream>

namespace pdt {
namespace {

/// Directory part of a path, without the trailing slash ("" if none).
std::string_view dirName(std::string_view path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? std::string_view{} : path.substr(0, pos);
}

std::string joinPath(std::string_view dir, std::string_view leaf) {
  if (dir.empty()) return std::string(leaf);
  std::string out(dir);
  if (!out.ends_with('/')) out.push_back('/');
  out.append(leaf);
  return out;
}

}  // namespace

FileId SourceManager::registerFile(std::string name, std::string content) {
  File f;
  f.name = std::move(name);
  f.content = std::move(content);
  f.line_offsets.push_back(0);
  for (std::uint32_t i = 0; i < f.content.size(); ++i) {
    if (f.content[i] == '\n') f.line_offsets.push_back(i + 1);
  }
  files_.push_back(std::move(f));
  const FileId id(static_cast<std::uint32_t>(files_.size()));  // ids are 1-based
  by_name_.emplace(files_.back().name, id);
  return id;
}

FileId SourceManager::addVirtualFile(std::string name, std::string content) {
  if (const auto it = by_name_.find(name); it != by_name_.end()) return it->second;
  return registerFile(std::move(name), std::move(content));
}

std::optional<FileId> SourceManager::loadFile(const std::string& path) {
  if (const auto it = by_name_.find(path); it != by_name_.end()) return it->second;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    for (const auto& dir : search_dirs_) {
      const std::string candidate = joinPath(dir, path);
      if (const auto it = by_name_.find(candidate); it != by_name_.end())
        return it->second;
      in.open(candidate, std::ios::binary);
      if (in) {
        std::ostringstream ss;
        ss << in.rdbuf();
        return registerFile(candidate, std::move(ss).str());
      }
    }
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return registerFile(path, std::move(ss).str());
}

void SourceManager::addSearchDir(std::string dir) {
  search_dirs_.push_back(std::move(dir));
}

std::optional<FileId> SourceManager::resolveInclude(std::string_view spelling,
                                                    bool angled, FileId includer) {
  const std::string leaf(spelling);
  if (!angled && known(includer)) {
    // "..." form: directory of the including file first.
    const std::string sibling = joinPath(dirName(name(includer)), leaf);
    if (const auto it = by_name_.find(sibling); it != by_name_.end())
      return it->second;
    if (std::ifstream in(sibling, std::ios::binary); in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      return registerFile(sibling, std::move(ss).str());
    }
  }
  // Virtual files are registered under their bare spelling.
  if (const auto it = by_name_.find(leaf); it != by_name_.end()) return it->second;
  return loadFile(leaf);
}

const SourceManager::File& SourceManager::get(FileId id) const {
  assert(id.valid() && id.raw() <= files_.size());
  return files_[id.raw() - 1];
}

bool SourceManager::known(FileId id) const {
  return id.valid() && id.raw() <= files_.size();
}

const std::string& SourceManager::name(FileId id) const { return get(id).name; }

std::string_view SourceManager::content(FileId id) const { return get(id).content; }

std::vector<FileId> SourceManager::allFiles() const {
  std::vector<FileId> out;
  out.reserve(files_.size());
  for (std::uint32_t i = 1; i <= files_.size(); ++i) out.emplace_back(i);
  return out;
}

std::string_view SourceManager::lineText(FileId id, std::uint32_t line) const {
  const File& f = get(id);
  if (line == 0 || line > f.line_offsets.size()) return {};
  const std::uint32_t begin = f.line_offsets[line - 1];
  std::uint32_t end = line < f.line_offsets.size()
                          ? f.line_offsets[line] - 1  // strip '\n'
                          : static_cast<std::uint32_t>(f.content.size());
  if (end > begin && f.content[end - 1] == '\r') --end;
  return std::string_view(f.content).substr(begin, end - begin);
}

std::string SourceManager::describe(SourceLocation loc) const {
  if (!loc.valid() || !known(loc.file)) return "<unknown>";
  return name(loc.file) + ":" + std::to_string(loc.line) + ":" +
         std::to_string(loc.column);
}

}  // namespace pdt
