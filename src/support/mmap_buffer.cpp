#include "support/mmap_buffer.h"

#include <cstdio>

#include "support/trace.h"

#if defined(__unix__) || defined(__APPLE__)
#define PDT_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define PDT_HAVE_MMAP 0
#endif

namespace pdt::support {

MmapBuffer& MmapBuffer::operator=(MmapBuffer&& other) noexcept {
  if (this == &other) return *this;
#if PDT_HAVE_MMAP
  if (mapped_ && data_ != nullptr)
    ::munmap(const_cast<void*>(data_), size_);
#endif
  data_ = other.data_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  owned_ = std::move(other.owned_);
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  return *this;
}

MmapBuffer::~MmapBuffer() {
#if PDT_HAVE_MMAP
  if (mapped_ && data_ != nullptr)
    ::munmap(const_cast<void*>(data_), size_);
#endif
}

std::optional<MmapBuffer> MmapBuffer::open(const std::string& path,
                                           bool allow_mmap, bool populate) {
#if PDT_HAVE_MMAP
  if (allow_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
        const auto size = static_cast<std::size_t>(st.st_size);
        if (size == 0) {
          // mmap(0) is ill-defined; an empty file needs no mapping.
          ::close(fd);
          MmapBuffer buf;
          buf.data_ = "";
          buf.size_ = 0;
          buf.mapped_ = false;
          return buf;
        }
        int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
        // A full read touches every byte anyway; pre-faulting the whole
        // mapping in one syscall beats one soft fault per 4K page.
        if (populate) flags |= MAP_POPULATE;
#endif
        void* map = ::mmap(nullptr, size, PROT_READ, flags, fd, 0);
        ::close(fd);
        if (map != MAP_FAILED) {
#ifdef MADV_SEQUENTIAL
          if (populate) ::madvise(map, size, MADV_SEQUENTIAL);
#endif
          MmapBuffer buf;
          buf.data_ = map;
          buf.size_ = size;
          buf.mapped_ = true;
          trace::count(trace::Counter::PdbMmapBytesMapped, size);
          return buf;
        }
      } else {
        ::close(fd);
        return std::nullopt;  // unreadable or not a regular file
      }
      // mmap itself failed (exotic filesystem, torn file): fall through
      // to the portable read, which will surface a hard failure if the
      // file really is unreadable.
    }
  }
#else
  (void)allow_mmap;
  (void)populate;
#endif
  // Portable path: slurp into owned storage.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return std::nullopt;
  }
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    return std::nullopt;
  }
  std::rewind(f);
  const auto size = static_cast<std::size_t>(end);
  MmapBuffer buf;
  buf.owned_ = std::make_unique<char[]>(size > 0 ? size : 1);
  std::size_t got = 0;
  if (size > 0) got = std::fread(buf.owned_.get(), 1, size, f);
  std::fclose(f);
  if (got != size) return std::nullopt;
  buf.data_ = buf.owned_.get();
  buf.size_ = size;
  buf.mapped_ = false;
  return buf;
}

}  // namespace pdt::support
