// Source coordinates used throughout the toolkit.
//
// The paper stresses that PDT preserves "original names and locations" from
// source code (§1, §3.1); every IL node, PDB item, and diagnostic carries a
// SourceLocation or SourceExtent built from these types.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace pdt {

/// Opaque handle to a file registered with a SourceManager.
/// Value 0 is reserved for "no file".
class FileId {
 public:
  constexpr FileId() = default;
  constexpr explicit FileId(std::uint32_t raw) : raw_(raw) {}

  [[nodiscard]] constexpr bool valid() const { return raw_ != 0; }
  [[nodiscard]] constexpr std::uint32_t raw() const { return raw_; }

  friend constexpr auto operator<=>(FileId, FileId) = default;

 private:
  std::uint32_t raw_ = 0;
};

/// A point in a source file. Lines and columns are 1-based, matching the
/// PDB format's "so#<id> <line> <col>" triples (paper Figure 3).
struct SourceLocation {
  FileId file;
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] constexpr bool valid() const { return file.valid() && line > 0; }

  friend constexpr auto operator<=>(const SourceLocation&,
                                    const SourceLocation&) = default;
};

/// A half-open region [begin, end] of source text; used for the PDB
/// header/body position attributes (rpos/cpos/tpos).
struct SourceExtent {
  SourceLocation begin;
  SourceLocation end;

  [[nodiscard]] constexpr bool valid() const { return begin.valid(); }

  friend constexpr auto operator<=>(const SourceExtent&,
                                    const SourceExtent&) = default;
};

}  // namespace pdt

template <>
struct std::hash<pdt::FileId> {
  std::size_t operator()(pdt::FileId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.raw());
  }
};

template <>
struct std::hash<pdt::SourceLocation> {
  std::size_t operator()(const pdt::SourceLocation& loc) const noexcept {
    std::size_t h = std::hash<pdt::FileId>{}(loc.file);
    h = h * 1000003u + loc.line;
    h = h * 1000003u + loc.column;
    return h;
  }
};
