// SmallVector: a vector with inline storage for the first N elements.
//
// The frontend assembles many short, short-lived token sequences —
// directive lines, macro argument lists, parser lookahead — whose typical
// length is a handful of tokens. A std::vector pays a heap allocation for
// each; SmallVector keeps the common case entirely on the stack and only
// spills to the heap past N elements (the nesfab parser's small-buffer
// idiom). Deliberately minimal: just the operations the frontend needs,
// with the same iterator/value semantics as std::vector for those.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace pdt {

template <typename T, std::size_t N>
class SmallVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  SmallVector(const SmallVector& other) { appendAll(other); }

  SmallVector(SmallVector&& other) noexcept { moveFrom(std::move(other)); }

  SmallVector& operator=(const SmallVector& other) {
    if (this == &other) return *this;
    clear();
    appendAll(other);
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this == &other) return *this;
    destroyAll();
    if (!isInline()) ::operator delete(data_);
    data_ = inlinePtr();
    size_ = 0;
    cap_ = N;
    moveFrom(std::move(other));
    return *this;
  }

  ~SmallVector() {
    destroyAll();
    if (!isInline()) ::operator delete(data_);
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow(size_ + 1);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    assert(size_ > 0);
    --size_;
    data_[size_].~T();
  }

  void clear() {
    destroyAll();
    size_ = 0;
  }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }

 private:
  T* inlinePtr() { return reinterpret_cast<T*>(inline_); }
  const T* inlinePtr() const { return reinterpret_cast<const T*>(inline_); }
  [[nodiscard]] bool isInline() const { return data_ == inlinePtr(); }

  void grow(std::size_t min_cap) {
    std::size_t new_cap = cap_ * 2;
    if (new_cap < min_cap) new_cap = min_cap;
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (!isInline()) ::operator delete(data_);
    data_ = fresh;
    cap_ = new_cap;
  }

  void destroyAll() {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
  }

  void appendAll(const SmallVector& other) {
    reserve(other.size_);
    for (std::size_t i = 0; i < other.size_; ++i) emplace_back(other.data_[i]);
  }

  void moveFrom(SmallVector&& other) noexcept {
    if (other.isInline()) {
      reserve(other.size_);
      for (std::size_t i = 0; i < other.size_; ++i)
        emplace_back(std::move(other.data_[i]));
      other.clear();
    } else {
      // Steal the heap buffer.
      data_ = other.data_;
      size_ = other.size_;
      cap_ = other.cap_;
      other.data_ = other.inlinePtr();
      other.size_ = 0;
      other.cap_ = N;
    }
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* data_ = inlinePtr();
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace pdt
