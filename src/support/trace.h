// Pipeline-wide tracing and metrics (docs/OBSERVABILITY.md).
//
// Two independent facilities share this header:
//
//  * Counters — always-on, cheap monotonic tallies of *what* the pipeline
//    did (tokens lexed, templates instantiated, PDB items written...).
//    Counter values are deterministic: byte-identical for any -j and for
//    warm vs cold cache runs (the build cache replays the counters a TU
//    produced when it was compiled; see BuildCache). Counts route to the
//    thread's active CounterBlock when a CounterScope is open (the driver
//    opens one per TU) and to a process-global block otherwise.
//
//  * Timing events — spans and counter tracks collected only while
//    collecting() is on (a tool saw --trace-out or --stats). Each thread
//    appends to its own buffer, so recording is lock-free after the first
//    event; writeChromeTrace() flushes everything as Chrome trace_event
//    JSON loadable in chrome://tracing or https://ui.perfetto.dev.
//    When collection is off a span costs one relaxed atomic load.
//
// StatsReport turns both into the --stats output: a deterministic counter
// section plus (when timing events exist) an aggregated phase table,
// per-TU phase rows, and per-thread utilization.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pdt::trace {

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Every named counter in the toolchain. Values are totals; the fixed enum
/// order is the serialization order, which makes counter output
/// byte-comparable across runs. Names (counterName) form the glossary in
/// docs/OBSERVABILITY.md.
enum class Counter : std::size_t {
  LexTokens,             // lex.tokens — tokens delivered to the parser
  LexArenaBytes,         // lex.arena_bytes — TokenArena bytes backing synthesized spellings
  PpIncludes,            // pp.includes — #include directives entered
  PpMacroExpansions,     // pp.macro_expansions — macro uses expanded
  SemaClassInstantiations,  // sema.class_instantiations — new Class<args>
  SemaFuncInstantiations,   // sema.func_instantiations — new f<args>
  SemaBodiesInstantiated,   // sema.bodies_instantiated — used-mode bodies built
  SemaBodiesSkipped,        // sema.bodies_skipped — bodies never used (used-mode win)
  IlItems,               // il.items — PDB items emitted by the IL analyzer
  PdbFilesRead,          // pdb.files_read
  PdbItemsRead,          // pdb.items_read
  PdbFilesWritten,       // pdb.files_written
  PdbItemsWritten,       // pdb.items_written
  PdbSectionsSkipped,    // pdb.sections_skipped — sections a lazy read left unloaded
  PdbMmapBytesMapped,    // pdb.mmap.bytes_mapped — bytes served via mmap
  MergeMerges,           // merge.merges — pairwise PDB::merge calls
  MergeDuplicatesElided, // merge.duplicates_elided — items deduplicated away
  MergeShards,           // merge.shards — shard workers of a sharded merge
  MergeSpills,           // merge.spills — partial merges spilled to disk
  DriverTus,             // driver.tus — translation units processed
  DiagErrors,            // diag.errors
  DiagWarnings,          // diag.warnings
  CheckFindings,         // check.findings — pdbcheck diagnostics produced
  kCount
};

[[nodiscard]] std::string_view counterName(Counter c);

/// One block of counter values: the fixed slots above plus string-keyed
/// dimensions (e.g. "sema.instantiations.by_template" -> name -> count).
/// Blocks are plain data — the driver keeps one per TU and sums them in
/// input order, which is what makes the totals -j-independent.
struct CounterBlock {
  std::array<std::uint64_t, static_cast<std::size_t>(Counter::kCount)> values{};
  std::map<std::string, std::map<std::string, std::uint64_t>, std::less<>> keyed;

  [[nodiscard]] std::uint64_t get(Counter c) const {
    return values[static_cast<std::size_t>(c)];
  }
  CounterBlock& operator+=(const CounterBlock& o);
  friend bool operator==(const CounterBlock&, const CounterBlock&) = default;

  /// Stable text form ("name value" lines, keyed entries as "dim|key value");
  /// the build cache persists this next to each entry so warm runs replay
  /// the counters of the compile they skipped.
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static std::optional<CounterBlock> deserialize(std::string_view text);
};

/// Adds `n` to counter `c` in the thread's active block (see CounterScope),
/// or the process-global block when none is open.
void count(Counter c, std::uint64_t n = 1);

/// Adds `n` under keyed dimension `dim`, key `key`. No-op when n == 0, so
/// zero-valued keys never appear (and never differ between runs).
void countKey(std::string_view dim, std::string_view key, std::uint64_t n = 1);

/// Routes this thread's count()/countKey() calls into `block` for the
/// scope's lifetime. Pass nullptr to *suppress* counting (the build cache
/// scans/fetches under a null scope so bookkeeping work never pollutes the
/// deterministic totals). Scopes nest; the previous target is restored.
class CounterScope {
 public:
  explicit CounterScope(CounterBlock* block);
  ~CounterScope();
  CounterScope(const CounterScope&) = delete;
  CounterScope& operator=(const CounterScope&) = delete;

 private:
  CounterBlock* prev_;
  bool prev_suppressed_;
};

/// Snapshot of the process-global block (counts made outside any scope).
[[nodiscard]] CounterBlock globalCounters();
void resetGlobalCounters();

// ---------------------------------------------------------------------------
// Timing events
// ---------------------------------------------------------------------------

/// True while timing collection is on. Span constructors check this first;
/// the disabled path is one relaxed atomic load.
[[nodiscard]] bool collecting();

/// Turns collection on (stamping the session epoch — event timestamps are
/// microseconds since it) or off. Enabling does not clear prior events;
/// call resetEvents() for a fresh session.
void setCollecting(bool on);

/// Drops all buffered events (counters are unaffected).
void resetEvents();

/// Names the calling thread in trace output ("main", "worker-3", ...).
void setThreadName(std::string_view name);

/// One recorded event. kind 'X' = complete span (dur_us valid),
/// 'C' = counter-track sample (value valid).
struct Event {
  const char* name = nullptr;  // static string (macro/literal call sites)
  std::string detail;          // span argument: TU path, template name, ...
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::int64_t value = 0;
  std::uint32_t tid = 0;
  char kind = 'X';
};

/// Appends a complete span directly (the thread pool synthesizes
/// "pool.wait" spans from enqueue timestamps this way). `name` must be a
/// static string.
void emitComplete(const char* name, std::uint64_t start_us, std::uint64_t dur_us,
                  std::string_view detail = {});

/// Appends a counter-track sample (rendered as a ph:"C" event — e.g. the
/// thread pool's queue depth over time). `track` must be a static string.
void counterSample(const char* track, std::int64_t value);

/// Microseconds since the session epoch (0 when not collecting).
[[nodiscard]] std::uint64_t nowUs();

/// RAII span: records [construction, destruction) as one complete event on
/// the current thread. `name` must outlive the session (string literal).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, std::string_view detail = {});
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;  // null = collection was off at entry: destructor no-op
  std::uint64_t start_us_ = 0;
  std::string detail_;
};

#define PDT_TRACE_CONCAT_IMPL(a, b) a##b
#define PDT_TRACE_CONCAT(a, b) PDT_TRACE_CONCAT_IMPL(a, b)
/// PDT_TRACE_SCOPE("sema.instantiate", name) — RAII span for the rest of
/// the enclosing block. The detail argument is optional.
#define PDT_TRACE_SCOPE(...) \
  const ::pdt::trace::ScopedSpan PDT_TRACE_CONCAT(pdt_trace_span_, __LINE__)(__VA_ARGS__)

/// Copies every buffered event (tests and StatsReport aggregate offline).
[[nodiscard]] std::vector<Event> snapshotEvents();

/// Name of thread `tid` as set via setThreadName ("thread-N" default).
[[nodiscard]] std::string threadName(std::uint32_t tid);

/// Writes all buffered events as Chrome trace_event JSON ({"traceEvents":
/// [...]} object form, ph "X"/"C" plus thread_name metadata). Loadable in
/// chrome://tracing and Perfetto.
void writeChromeTrace(std::ostream& os);
/// Returns false when the file cannot be written.
bool writeChromeTraceFile(const std::string& path);

// ---------------------------------------------------------------------------
// Stats reporting (--stats)
// ---------------------------------------------------------------------------

/// Aggregated view of one span name across the run.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t min_us = 0;
  std::uint64_t max_us = 0;
};

/// Builder + renderer for the --stats output of every tool. Sections are
/// rendered in insertion order; the counter section serializes in fixed
/// enum/key order, so its bytes are run-to-run comparable.
class StatsReport {
 public:
  explicit StatsReport(std::string tool);

  void setCounters(CounterBlock counters);

  /// Adds a named key/value section (e.g. "cache" hit/miss numbers —
  /// meaningful per run but deliberately outside the deterministic
  /// counter section).
  void addSection(std::string name,
                  std::vector<std::pair<std::string, std::uint64_t>> kv);

  /// Snapshots the event buffers into phase aggregates, per-TU phase rows,
  /// and per-thread busy time. No-op when no events were collected.
  void captureTimings();

  void renderText(std::ostream& os) const;
  void renderJson(std::ostream& os) const;

  [[nodiscard]] const std::vector<SpanStats>& phases() const { return phases_; }

 private:
  struct Section {
    std::string name;
    std::vector<std::pair<std::string, std::uint64_t>> kv;
  };
  struct TuRow {
    std::string file;
    // (phase name, total us) in fixed phase order; only phases seen.
    std::vector<std::pair<std::string, std::uint64_t>> phase_us;
  };
  struct ThreadRow {
    std::uint32_t tid = 0;
    std::string name;
    std::uint64_t busy_us = 0;  // sum of span durations on the thread
    std::uint64_t spans = 0;
  };

  std::string tool_;
  std::optional<CounterBlock> counters_;
  std::vector<Section> sections_;
  std::vector<SpanStats> phases_;
  std::vector<TuRow> tus_;
  std::vector<ThreadRow> threads_;
  std::uint64_t wall_us_ = 0;
  bool has_timings_ = false;
};

// ---------------------------------------------------------------------------
// Tool flag surface (--trace-out / --stats / --stats-out)
// ---------------------------------------------------------------------------

/// The uniform observability flags of cxxparse, pdbmerge, and pdbcheck.
/// Each main() routes unrecognized arguments through parseFlag() and calls
/// finish() on exit.
struct ToolObservability {
  bool stats = false;        // --stats[=text|json]
  bool json = false;         // --stats=json
  std::string stats_out;     // --stats-out FILE (empty = stderr)
  std::string trace_out;     // --trace-out FILE (empty = no trace)

  /// Returns true when `arg` (possibly consuming `next`, signalled via
  /// `used_next`) was one of the observability flags. Malformed values set
  /// `error` instead.
  bool parseFlag(std::string_view arg, const char* next, bool& used_next,
                 std::string& error);

  /// True when any collection (timing or trace output) is requested;
  /// call before the tool starts real work.
  [[nodiscard]] bool wanted() const {
    return stats || !stats_out.empty() || !trace_out.empty();
  }

  /// Enables timing collection and names the calling thread "main".
  void begin() const;

  /// Renders `report` (text to stderr or --stats-out file; json with
  /// --stats=json) and writes the trace file. Returns false if an output
  /// file could not be written (the caller should exit non-zero).
  bool finish(StatsReport& report) const;
};

}  // namespace pdt::trace
