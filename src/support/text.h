// Small text utilities shared by the PDB writer/reader and code generators.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace pdt {

/// Splits on any run-free single occurrences of `sep` (empty fields kept).
[[nodiscard]] std::vector<std::string_view> split(std::string_view text, char sep);

/// Splits on whitespace runs, dropping empty fields.
[[nodiscard]] std::vector<std::string_view> splitWhitespace(std::string_view text);

[[nodiscard]] std::string_view trim(std::string_view text);

[[nodiscard]] bool startsWith(std::string_view text, std::string_view prefix);

/// Replaces every occurrence of `from` (non-empty) with `to`.
[[nodiscard]] std::string replaceAll(std::string_view text, std::string_view from,
                                     std::string_view to);

/// Escapes newlines and backslashes so multi-line text (template bodies,
/// macro definitions) fits on one PDB attribute line; inverse of unescape.
[[nodiscard]] std::string escapePdbString(std::string_view text);
[[nodiscard]] std::string unescapePdbString(std::string_view text);

/// Escapes &, <, >, " for HTML output (pdbhtml).
[[nodiscard]] std::string escapeHtml(std::string_view text);

/// Escapes ", \, and control characters for a JSON string literal. Shared
/// by every JSON writer in the tree (trace/stats output, pdbcheck's SARIF
/// renderer, the bench harness).
[[nodiscard]] std::string escapeJson(std::string_view text);

/// Parses a non-negative integer; returns false on malformed input.
[[nodiscard]] bool parseUint(std::string_view text, std::uint32_t& out);

/// Joins the pieces into one string with a single exact-size allocation.
/// Diagnostic-message call sites build text from 3-6 fragments; chaining
/// operator+ there allocates a fresh temporary per fragment.
[[nodiscard]] inline std::string concat(std::initializer_list<std::string_view> pieces) {
  std::size_t total = 0;
  for (std::string_view p : pieces) total += p.size();
  std::string out;
  out.reserve(total);
  for (std::string_view p : pieces) out.append(p);
  return out;
}

}  // namespace pdt
