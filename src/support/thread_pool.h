// Fixed-size thread pool for the parallel compilation pipeline.
//
// Design goals (DESIGN.md "Parallel pipeline"):
//   * deterministic orchestration — the pool runs tasks, callers own the
//     ordering. Results are retrieved through std::future in whatever order
//     the caller chooses (cxxparse collects per-TU futures in input order,
//     so its merged output is byte-identical to the serial path);
//   * exception propagation — a task that throws stores the exception in
//     its future; the pool itself never dies;
//   * reuse after drain — waiting on all futures leaves the pool idle and
//     ready for the next batch (pdbmerge runs one batch per reduction
//     round on a single pool).
//
// There is deliberately no work stealing and no task priority: tasks are
// executed FIFO by whichever worker frees up first. Anything that needs a
// deterministic result must get it from the futures, not from run order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace pdt {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues `fn`; the returned future yields its result or rethrows the
  /// exception it exited with.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using Result = std::invoke_result_t<std::decay_t<Fn>>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Hardware concurrency with a sane floor (hardware_concurrency may be 0).
  [[nodiscard]] static std::size_t defaultConcurrency();

 private:
  /// Queue entry: the job plus its enqueue timestamp (0 when tracing is
  /// off) so the worker can emit a "pool.wait" span for the time the task
  /// sat in the queue.
  struct Job {
    std::function<void()> fn;
    std::uint64_t enqueue_us = 0;
  };

  void enqueue(std::function<void()> job);
  void workerLoop(std::size_t index);

  std::mutex mutex_;
  std::condition_variable wake_;
  std::queue<Job> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace pdt
