// Serializes a PdbFile to the compact binary PDB v2 representation
// (docs/PDB_FORMAT.md §"Binary v2"): fixed-width little-endian records
// grouped into sections, a section table for O(1) lazy section reads, a
// deduplicated string table, and a trailing FNV-1a checksum so readers
// reject truncated or bit-flipped files cheaply.
#pragma once

#include <string>

#include "pdb/pdb.h"

namespace pdt::pdb {

[[nodiscard]] std::string writeBinaryToString(const PdbFile& pdb);

/// Writes to `path`; returns false on I/O failure.
bool writeBinaryToFile(const PdbFile& pdb, const std::string& path);

}  // namespace pdt::pdb
