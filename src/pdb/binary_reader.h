// Parses the binary PDB v2 representation back into a PdbFile
// (docs/PDB_FORMAT.md §"Binary v2"). The trailing checksum is always
// verified first — truncated or bit-flipped files are rejected before any
// record is decoded — and the section table lets a lazy read deserialize
// only the sections in the caller's mask.
#pragma once

#include <string_view>

#include "pdb/pdb.h"
#include "pdb/reader.h"

namespace pdt::pdb {

/// True when `bytes` starts with the binary v2 magic.
[[nodiscard]] bool isBinaryPdb(std::string_view bytes);

ReadResult readBinaryFromBuffer(std::string_view bytes,
                                Sections sections = Sections::All);

}  // namespace pdt::pdb
