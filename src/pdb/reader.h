// Parses the ASCII PDB format back into a PdbFile (docs/PDB_FORMAT.md).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "pdb/pdb.h"

namespace pdt::pdb {

struct ReadResult {
  PdbFile pdb;
  std::vector<std::string> errors;  // "line N: message"
  [[nodiscard]] bool ok() const { return errors.empty(); }
};

ReadResult read(std::istream& is);
ReadResult readFromString(const std::string& text);
/// Returns nullopt when the file cannot be opened.
std::optional<ReadResult> readFromFile(const std::string& path);

}  // namespace pdt::pdb
