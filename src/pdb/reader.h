// Parses the ASCII PDB format back into a PdbFile (docs/PDB_FORMAT.md).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pdb/pdb.h"

namespace pdt::pdb {

struct ReadResult {
  PdbFile pdb;
  std::vector<std::string> errors;  // "line N: message"
  /// Sections actually materialized (== the requested mask for lazy reads;
  /// Sections::All for a plain full read). pdb::validate takes this to
  /// skip references into sections that were deliberately left unloaded.
  Sections loaded = Sections::All;
  [[nodiscard]] bool ok() const { return errors.empty(); }
};

// Ownership: parsing is zero-copy, so item string fields are views. The
// convenience entry points (read, readFromString, readFromFile) move their
// buffer into the result as a backing — the returned database owns what it
// aliases. readFromBuffer is the expert API: its result aliases `text`,
// which must outlive the database (or be adopted via PdbFile::adoptBacking).

ReadResult read(std::istream& is);
ReadResult readFromString(const std::string& text);
/// Zero-copy parse over a caller-owned buffer (the fast path: the other
/// entry points slurp their input and delegate here). The result's string
/// fields alias `text`.
ReadResult readFromBuffer(std::string_view text);
/// Lazy variant: items outside `sections` are skipped without decoding
/// their attributes (format.h routes the mask to the binary reader's O(1)
/// section-table skip as well).
ReadResult readFromBuffer(std::string_view text, Sections sections);
/// Parses `text` and transfers it into the result as a backing.
ReadResult readOwning(std::string text, Sections sections);
/// Returns nullopt when the file cannot be opened. Reads the whole file in
/// one shot rather than line-by-line.
std::optional<ReadResult> readFromFile(const std::string& path);

}  // namespace pdt::pdb
