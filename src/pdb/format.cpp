#include "pdb/format.h"

#include <fstream>

#include "pdb/binary_reader.h"
#include "pdb/binary_writer.h"
#include "pdb/writer.h"
#include "support/trace.h"

namespace pdt::pdb {
namespace {

class AsciiFormatReader final : public FormatReader {
 public:
  [[nodiscard]] Format format() const override { return Format::Ascii; }
  [[nodiscard]] ReadResult readBuffer(std::string_view bytes,
                                      Sections sections) const override {
    return readFromBuffer(bytes, sections);
  }
};

class AsciiFormatWriter final : public FormatWriter {
 public:
  [[nodiscard]] Format format() const override { return Format::Ascii; }
  [[nodiscard]] std::string writeString(const PdbFile& pdb) const override {
    return writeToString(pdb);
  }
};

class BinaryFormatReader final : public FormatReader {
 public:
  [[nodiscard]] Format format() const override { return Format::Binary; }
  [[nodiscard]] ReadResult readBuffer(std::string_view bytes,
                                      Sections sections) const override {
    return readBinaryFromBuffer(bytes, sections);
  }
};

class BinaryFormatWriter final : public FormatWriter {
 public:
  [[nodiscard]] Format format() const override { return Format::Binary; }
  [[nodiscard]] std::string writeString(const PdbFile& pdb) const override {
    return writeBinaryToString(pdb);
  }
};

std::optional<std::string> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string buffer;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size > 0) {
    buffer.resize(static_cast<std::size_t>(size));
    in.seekg(0, std::ios::beg);
    in.read(buffer.data(), size);
    buffer.resize(static_cast<std::size_t>(in.gcount()));
  }
  return buffer;
}

}  // namespace

std::string_view formatName(Format format) {
  switch (format) {
    case Format::Ascii: return "ascii";
    case Format::Binary: return "binary";
  }
  return "??";
}

std::optional<Format> formatFromName(std::string_view name) {
  if (name == "ascii") return Format::Ascii;
  if (name == "bin" || name == "binary") return Format::Binary;
  return std::nullopt;
}

Format detectFormat(std::string_view bytes) {
  return isBinaryPdb(bytes) ? Format::Binary : Format::Ascii;
}

const FormatReader& readerFor(Format format) {
  static const AsciiFormatReader ascii;
  static const BinaryFormatReader binary;
  return format == Format::Binary ? static_cast<const FormatReader&>(binary)
                                  : ascii;
}

const FormatWriter& writerFor(Format format) {
  static const AsciiFormatWriter ascii;
  static const BinaryFormatWriter binary;
  return format == Format::Binary ? static_cast<const FormatWriter&>(binary)
                                  : ascii;
}

ReadResult readBuffer(std::string_view bytes, Sections sections) {
  return readerFor(detectFormat(bytes)).readBuffer(bytes, sections);
}

std::optional<ReadResult> readFile(const std::string& path, Sections sections) {
  PDT_TRACE_SCOPE("pdb.read", path);
  const auto bytes = slurp(path);
  if (!bytes) return std::nullopt;
  return readBuffer(*bytes, sections);
}

std::string writeString(const PdbFile& pdb, Format format) {
  return writerFor(format).writeString(pdb);
}

bool writeFile(const PdbFile& pdb, const std::string& path, Format format) {
  if (format == Format::Ascii) return writeToFile(pdb, path);
  return writeBinaryToFile(pdb, path);
}

}  // namespace pdt::pdb
