#include "pdb/format.h"

#include <atomic>

#include "pdb/binary_reader.h"
#include "pdb/binary_writer.h"
#include "pdb/writer.h"

namespace pdt::pdb {
namespace {

class AsciiFormatReader final : public FormatReader {
 public:
  [[nodiscard]] Format format() const override { return Format::Ascii; }
  [[nodiscard]] ReadResult readBuffer(std::string_view bytes,
                                      Sections sections) const override {
    return readFromBuffer(bytes, sections);
  }
};

class AsciiFormatWriter final : public FormatWriter {
 public:
  [[nodiscard]] Format format() const override { return Format::Ascii; }
  [[nodiscard]] std::string writeString(const PdbFile& pdb) const override {
    return writeToString(pdb);
  }
};

class BinaryFormatReader final : public FormatReader {
 public:
  [[nodiscard]] Format format() const override { return Format::Binary; }
  [[nodiscard]] ReadResult readBuffer(std::string_view bytes,
                                      Sections sections) const override {
    return readBinaryFromBuffer(bytes, sections);
  }
};

class BinaryFormatWriter final : public FormatWriter {
 public:
  [[nodiscard]] Format format() const override { return Format::Binary; }
  [[nodiscard]] std::string writeString(const PdbFile& pdb) const override {
    return writeBinaryToString(pdb);
  }
};

std::atomic<MmapMode> g_mmap_mode{MmapMode::Auto};

}  // namespace

std::string_view formatName(Format format) {
  switch (format) {
    case Format::Ascii: return "ascii";
    case Format::Binary: return "binary";
  }
  return "??";
}

std::optional<Format> formatFromName(std::string_view name) {
  if (name == "ascii") return Format::Ascii;
  if (name == "bin" || name == "binary") return Format::Binary;
  return std::nullopt;
}

Format detectFormat(std::string_view bytes) {
  return isBinaryPdb(bytes) ? Format::Binary : Format::Ascii;
}

const FormatReader& readerFor(Format format) {
  static const AsciiFormatReader ascii;
  static const BinaryFormatReader binary;
  return format == Format::Binary ? static_cast<const FormatReader&>(binary)
                                  : ascii;
}

const FormatWriter& writerFor(Format format) {
  static const AsciiFormatWriter ascii;
  static const BinaryFormatWriter binary;
  return format == Format::Binary ? static_cast<const FormatWriter&>(binary)
                                  : ascii;
}

ReadResult readBuffer(std::string_view bytes, Sections sections) {
  return readerFor(detectFormat(bytes)).readBuffer(bytes, sections);
}

void setMmapMode(MmapMode mode) {
  g_mmap_mode.store(mode, std::memory_order_relaxed);
}

MmapMode mmapMode() { return g_mmap_mode.load(std::memory_order_relaxed); }

std::optional<MmapMode> mmapModeFromName(std::string_view name) {
  if (name == "on") return MmapMode::On;
  if (name == "off") return MmapMode::Off;
  if (name == "auto") return MmapMode::Auto;
  return std::nullopt;
}

bool parseMmapFlag(std::string_view arg, std::string& error) {
  constexpr std::string_view kPrefix = "--mmap=";
  if (!arg.starts_with(kPrefix)) return false;
  const std::string_view name = arg.substr(kPrefix.size());
  if (const auto mode = mmapModeFromName(name)) {
    setMmapMode(*mode);
  } else {
    error = "unknown --mmap mode '" + std::string(name) +
            "' (expected auto, on, or off)";
  }
  return true;
}

std::string writeString(const PdbFile& pdb, Format format) {
  return writerFor(format).writeString(pdb);
}

bool writeFile(const PdbFile& pdb, const std::string& path, Format format) {
  if (format == Format::Ascii) return writeToFile(pdb, path);
  return writeBinaryToFile(pdb, path);
}

}  // namespace pdt::pdb
