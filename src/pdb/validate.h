// Referential-integrity validation of a program database: every item id a
// PDB mentions (call targets, base classes, signatures, includes, source
// positions, ...) must resolve to an item of the right kind. Tools that
// consume untrusted .pdb files (pdbcheck, pdbmerge) run this up front and
// refuse databases with dangling references instead of silently dropping
// edges.
#pragma once

#include <string>
#include <vector>

#include "pdb/pdb.h"

namespace pdt::pdb {

/// Returns one message per dangling reference ("routine 'f' (ro#3): call
/// references undefined ro#99"); empty means the database is closed under
/// its own references.
[[nodiscard]] std::vector<std::string> validate(const PdbFile& pdb);

}  // namespace pdt::pdb
