// Referential-integrity validation of a program database: every item id a
// PDB mentions (call targets, base classes, signatures, includes, source
// positions, ...) must resolve to an item of the right kind. Tools that
// consume untrusted .pdb files (pdbcheck, pdbmerge) run this up front and
// refuse databases with dangling references instead of silently dropping
// edges.
#pragma once

#include <string>
#include <vector>

#include "pdb/pdb.h"

namespace pdt::pdb {

/// Returns one message per dangling reference; empty means the database is
/// closed under its own references. Each message names the offending
/// entity and, when the database came from a reader, where its record
/// lives ("routine 'f' (ro#3, line 42): call references undefined ro#99" —
/// line numbers for ASCII input, byte offsets for binary; see
/// PdbFile::offsetUnit).
[[nodiscard]] std::vector<std::string> validate(const PdbFile& pdb);

/// Lazy-read variant: references into sections outside `loaded` (left
/// unmaterialized by a section-masked read, ReadResult::loaded) are not
/// checked — everything else is validated as usual.
[[nodiscard]] std::vector<std::string> validate(const PdbFile& pdb,
                                                Sections loaded);

}  // namespace pdt::pdb
