#include "pdb/binary_writer.h"

#include <cstring>
#include <fstream>
#include <unordered_map>

#include "pdb/binary_layout.h"
#include "pdb/format.h"
#include "support/trace.h"

namespace pdt::pdb {
namespace {

// On-disk layout (docs/PDB_FORMAT.md §"Binary v2"). Everything after the
// magic is little-endian:
//
//   magic[8]                      "\x89PDB2\r\n\x1a"
//   u32 section_count             non-empty sections only
//   u64 total_size                whole file, incl. trailing checksum
//   u64 strtab_offset, u64 strtab_size
//   u64 strtab_checksum           binary::checksum64 of the string table
//   section table: section_count x { u32 kind, u32 item_count,
//                                    u64 offset, u64 size,
//                                    u64 checksum (of the payload) }
//   section payloads (writer order: so te ro cl ty na ma)
//   string table: u32 count, then per string u32 length + bytes
//   u64 checksum                  binary::checksum64 of [0, total_size - 8)
//
// The section table is what makes lazy reads O(1): a reader seeks straight
// to the payloads it wants and never touches the rest. The per-section and
// string-table checksums let the mmap-backed lazy read verify integrity of
// exactly what it loads without faulting in the sections it skips; the
// trailing whole-file checksum is what a full read verifies.

using binary::kHeaderSize;
using binary::kSectionEntrySize;

class Encoder {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  [[nodiscard]] const std::string& bytes() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Deduplicated string table built in first-encounter order (deterministic
/// because section encoding order is fixed).
class StringTable {
 public:
  std::uint32_t idOf(std::string_view s) {
    const auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  [[nodiscard]] std::string encode() const {
    Encoder enc;
    enc.u32(static_cast<std::uint32_t>(strings_.size()));
    for (const std::string& s : strings_) {
      enc.u32(static_cast<std::uint32_t>(s.size()));
      for (const char c : s) enc.u8(static_cast<std::uint8_t>(c));
    }
    return enc.take();
  }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::uint32_t, SvHash, SvEq> ids_;
};

class SectionEncoder : public Encoder {
 public:
  explicit SectionEncoder(StringTable& strings) : strings_(strings) {}

  void str(std::string_view s) { u32(strings_.idOf(s)); }
  void ref(const ItemRef& r) {
    u8(static_cast<std::uint8_t>(r.kind));
    u32(r.id);
  }
  void optRef(const std::optional<ItemRef>& r) {
    if (r) {
      ref(*r);
    } else {
      u8(0xff);
      u32(0);
    }
  }
  void optU32(const std::optional<std::uint32_t>& v) {
    u8(v ? 1 : 0);
    u32(v ? *v : 0);
  }
  void pos(const Pos& p) {
    u32(p.file);
    u32(p.line);
    u32(p.column);
  }
  void extent(const Extent& e) {
    pos(e.header_begin);
    pos(e.header_end);
    pos(e.body_begin);
    pos(e.body_end);
  }

 private:
  StringTable& strings_;
};

std::string encodeSourceFiles(const PdbFile& pdb, StringTable& strings) {
  SectionEncoder enc(strings);
  for (const SourceFileItem& f : pdb.sourceFiles()) {
    enc.u32(f.id);
    enc.str(f.name);
    enc.u32(static_cast<std::uint32_t>(f.includes.size()));
    for (const std::uint32_t inc : f.includes) enc.u32(inc);
    enc.u8(f.system ? 1 : 0);
  }
  return enc.take();
}

std::string encodeTemplates(const PdbFile& pdb, StringTable& strings) {
  SectionEncoder enc(strings);
  for (const TemplateItem& t : pdb.templates()) {
    enc.u32(t.id);
    enc.str(t.name);
    enc.pos(t.location);
    enc.optRef(t.parent);
    enc.str(t.access);
    enc.str(t.kind);
    enc.str(t.text);
    enc.extent(t.extent);
  }
  return enc.take();
}

std::string encodeRoutines(const PdbFile& pdb, StringTable& strings) {
  SectionEncoder enc(strings);
  for (const RoutineItem& r : pdb.routines()) {
    enc.u32(r.id);
    enc.str(r.name);
    enc.pos(r.location);
    enc.optRef(r.parent);
    enc.str(r.access);
    enc.u32(r.signature);
    enc.str(r.linkage);
    enc.str(r.storage);
    enc.str(r.virtuality);
    enc.str(r.kind);
    enc.optU32(r.template_id);
    enc.u8(static_cast<std::uint8_t>((r.is_specialization ? 0x01 : 0) |
                                     (r.is_static ? 0x02 : 0) |
                                     (r.is_inline ? 0x04 : 0) |
                                     (r.is_explicit ? 0x08 : 0) |
                                     (r.defined ? 0x10 : 0)));
    enc.u32(static_cast<std::uint32_t>(r.calls.size()));
    for (const RoutineItem::Call& c : r.calls) {
      enc.u32(c.routine);
      enc.u8(c.is_virtual ? 1 : 0);
      enc.pos(c.position);
    }
    enc.extent(r.extent);
  }
  return enc.take();
}

std::string encodeClasses(const PdbFile& pdb, StringTable& strings) {
  SectionEncoder enc(strings);
  for (const ClassItem& c : pdb.classes()) {
    enc.u32(c.id);
    enc.str(c.name);
    enc.pos(c.location);
    enc.optRef(c.parent);
    enc.str(c.access);
    enc.str(c.kind);
    enc.optU32(c.template_id);
    enc.u8(c.is_specialization ? 1 : 0);
    enc.u32(static_cast<std::uint32_t>(c.bases.size()));
    for (const ClassItem::Base& b : c.bases) {
      enc.u32(b.cls);
      enc.str(b.access);
      enc.u8(b.is_virtual ? 1 : 0);
    }
    enc.u32(static_cast<std::uint32_t>(c.friends.size()));
    for (const ClassItem::Friend& f : c.friends) {
      enc.u8(f.is_class ? 1 : 0);
      enc.str(f.name);
      enc.optRef(f.ref);
    }
    enc.u32(static_cast<std::uint32_t>(c.funcs.size()));
    for (const ClassItem::MemberFunc& mf : c.funcs) {
      enc.u32(mf.routine);
      enc.pos(mf.location);
    }
    enc.u32(static_cast<std::uint32_t>(c.members.size()));
    for (const ClassItem::Member& m : c.members) {
      enc.str(m.name);
      enc.pos(m.location);
      enc.str(m.access);
      enc.str(m.kind);
      enc.ref(m.type);
    }
    enc.extent(c.extent);
  }
  return enc.take();
}

std::string encodeTypes(const PdbFile& pdb, StringTable& strings) {
  SectionEncoder enc(strings);
  for (const TypeItem& t : pdb.types()) {
    enc.u32(t.id);
    enc.str(t.name);
    enc.str(t.kind);
    enc.str(t.ikind);
    enc.optRef(t.ref);
    enc.u32(static_cast<std::uint32_t>(t.qualifiers.size()));
    for (const std::string_view q : t.qualifiers) enc.str(q);
    enc.optRef(t.return_type);
    enc.u32(static_cast<std::uint32_t>(t.params.size()));
    for (const ItemRef& p : t.params) enc.ref(p);
    enc.u8(static_cast<std::uint8_t>((t.has_ellipsis ? 0x01 : 0) |
                                     (t.has_exception_spec ? 0x02 : 0)));
    enc.u32(static_cast<std::uint32_t>(t.exception_specs.size()));
    for (const ItemRef& e : t.exception_specs) enc.ref(e);
    enc.i64(t.array_size);
    enc.u32(static_cast<std::uint32_t>(t.enumerators.size()));
    for (const auto& [name, value] : t.enumerators) {
      enc.str(name);
      enc.i64(value);
    }
  }
  return enc.take();
}

std::string encodeNamespaces(const PdbFile& pdb, StringTable& strings) {
  SectionEncoder enc(strings);
  for (const NamespaceItem& n : pdb.namespaces()) {
    enc.u32(n.id);
    enc.str(n.name);
    enc.pos(n.location);
    enc.u32(static_cast<std::uint32_t>(n.members.size()));
    for (const ItemRef& m : n.members) enc.ref(m);
    enc.str(n.alias);
  }
  return enc.take();
}

std::string encodeMacros(const PdbFile& pdb, StringTable& strings) {
  SectionEncoder enc(strings);
  for (const MacroItem& m : pdb.macros()) {
    enc.u32(m.id);
    enc.str(m.name);
    enc.pos(m.location);
    enc.str(m.kind);
    enc.str(m.text);
  }
  return enc.take();
}

std::string encodeDynProfs(const PdbFile& pdb, StringTable& strings) {
  SectionEncoder enc(strings);
  for (const DynProfItem& p : pdb.dynProfs()) {
    enc.u32(p.id);
    enc.str(p.name);
    enc.u32(p.routine);
    enc.u64(p.calls);
    enc.u64(p.child_calls);
    enc.u64(p.inclusive_ns);
    enc.u64(p.exclusive_ns);
    enc.u32(p.threads);
    enc.u32(p.contexts);
  }
  return enc.take();
}

std::string encodeDefUses(const PdbFile& pdb, StringTable& strings) {
  SectionEncoder enc(strings);
  for (const DefUseItem& d : pdb.defUses()) {
    enc.u32(d.id);
    enc.u32(d.routine);
    enc.u32(static_cast<std::uint32_t>(d.events.size()));
    for (const DefUseItem::Event& e : d.events) {
      enc.u8(static_cast<std::uint8_t>(e.op));
      enc.u8(e.flags);
      enc.str(e.name);
      enc.pos(e.pos);
    }
  }
  return enc.take();
}

struct SectionBlob {
  ItemKind kind;
  std::uint32_t item_count = 0;
  std::string payload;
};

}  // namespace

std::string writeBinaryToString(const PdbFile& pdb) {
  trace::count(trace::Counter::PdbFilesWritten);
  trace::count(trace::Counter::PdbItemsWritten, pdb.itemCount());

  StringTable strings;
  std::vector<SectionBlob> sections;
  const auto addSection = [&](ItemKind kind, std::size_t count,
                              std::string payload) {
    if (count == 0) return;
    sections.push_back(
        {kind, static_cast<std::uint32_t>(count), std::move(payload)});
  };
  // Same section order as the ASCII writer (so te ro cl ty na ma du dp).
  addSection(ItemKind::SourceFile, pdb.sourceFiles().size(),
             encodeSourceFiles(pdb, strings));
  addSection(ItemKind::Template, pdb.templates().size(),
             encodeTemplates(pdb, strings));
  addSection(ItemKind::Routine, pdb.routines().size(),
             encodeRoutines(pdb, strings));
  addSection(ItemKind::Class, pdb.classes().size(),
             encodeClasses(pdb, strings));
  addSection(ItemKind::Type, pdb.types().size(), encodeTypes(pdb, strings));
  addSection(ItemKind::Namespace, pdb.namespaces().size(),
             encodeNamespaces(pdb, strings));
  addSection(ItemKind::Macro, pdb.macros().size(),
             encodeMacros(pdb, strings));
  addSection(ItemKind::DefUse, pdb.defUses().size(),
             encodeDefUses(pdb, strings));
  addSection(ItemKind::DynProf, pdb.dynProfs().size(),
             encodeDynProfs(pdb, strings));

  const std::string strtab = strings.encode();

  std::size_t payload_size = 0;
  for (const SectionBlob& s : sections) payload_size += s.payload.size();
  const std::size_t table_size = sections.size() * kSectionEntrySize;
  const std::uint64_t strtab_offset = kHeaderSize + table_size + payload_size;
  const std::uint64_t total_size = strtab_offset + strtab.size() + 8;

  Encoder out;
  for (const char c : kBinaryMagic) out.u8(static_cast<std::uint8_t>(c));
  out.u32(static_cast<std::uint32_t>(sections.size()));
  out.u64(total_size);
  out.u64(strtab_offset);
  out.u64(strtab.size());
  out.u64(binary::checksum64(strtab));
  std::uint64_t offset = kHeaderSize + table_size;
  for (const SectionBlob& s : sections) {
    out.u32(static_cast<std::uint32_t>(s.kind));
    out.u32(s.item_count);
    out.u64(offset);
    out.u64(s.payload.size());
    out.u64(binary::checksum64(s.payload));
    offset += s.payload.size();
  }
  std::string bytes = out.take();
  bytes.reserve(total_size);
  for (const SectionBlob& s : sections) bytes += s.payload;
  bytes += strtab;

  const std::uint64_t checksum = binary::checksum64(bytes);
  Encoder tail;
  tail.u64(checksum);
  bytes += tail.bytes();
  return bytes;
}

bool writeBinaryToFile(const PdbFile& pdb, const std::string& path) {
  PDT_TRACE_SCOPE("pdb.write", path);
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const std::string bytes = writeBinaryToString(pdb);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

}  // namespace pdt::pdb
