// Serializes a PdbFile to the compact ASCII format of docs/PDB_FORMAT.md.
#pragma once

#include <iosfwd>
#include <string>

#include "pdb/pdb.h"

namespace pdt::pdb {

void write(const PdbFile& pdb, std::ostream& os);
[[nodiscard]] std::string writeToString(const PdbFile& pdb);
/// Writes to `path`; returns false on I/O failure.
bool writeToFile(const PdbFile& pdb, const std::string& path);

}  // namespace pdt::pdb
