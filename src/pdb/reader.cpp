#include "pdb/reader.h"

#include <charconv>
#include <fstream>
#include <istream>
#include <sstream>

#include "support/text.h"
#include "support/trace.h"

namespace pdt::pdb {
namespace {

/// Cursor over the whitespace-separated fields of one attribute line.
/// Tokenizes lazily in place — no per-line vector, no per-field string.
class Fields {
 public:
  explicit Fields(std::string_view line) : text_(line) {}

  [[nodiscard]] bool empty() const {
    skipSpace();
    return pos_ >= text_.size();
  }

  std::optional<std::string_view> next() {
    skipSpace();
    if (pos_ >= text_.size()) return std::nullopt;
    const std::size_t start = pos_;
    while (pos_ < text_.size() && !isSpace(text_[pos_])) ++pos_;
    return text_.substr(start, pos_ - start);
  }

  std::optional<ItemRef> nextRef() {
    const auto f = next();
    if (!f) return std::nullopt;
    const auto hash = f->find('#');
    if (hash == std::string_view::npos) return std::nullopt;
    const auto kind = kindFromPrefix(f->substr(0, hash));
    std::uint32_t id = 0;
    if (!kind || !parseUint(f->substr(hash + 1), id)) return std::nullopt;
    return ItemRef{*kind, id};
  }

  /// Next field as a stable interned view; empty when exhausted (malformed
  /// input). Use for the bounded attribute vocabulary (access, kind, ...);
  /// the returned view outlives the parse buffer.
  std::string_view nextInterned() {
    const auto f = next();
    return f ? PdbFile::intern(*f) : std::string_view{};
  }

  std::optional<std::uint32_t> nextUint() {
    const auto f = next();
    std::uint32_t v = 0;
    if (!f || !parseUint(*f, v)) return std::nullopt;
    return v;
  }

  std::optional<std::uint64_t> nextU64() {
    const auto f = next();
    if (!f || f->empty()) return std::nullopt;
    std::uint64_t v = 0;
    const auto [ptr, ec] =
        std::from_chars(f->data(), f->data() + f->size(), v);
    if (ec != std::errc{} || ptr != f->data() + f->size()) return std::nullopt;
    return v;
  }

  std::optional<Pos> nextPos() {
    const auto f = next();
    if (!f) return std::nullopt;
    Pos pos;
    if (*f != "NULL") {
      const auto hash = f->find('#');
      if (hash == std::string_view::npos || f->substr(0, hash) != "so")
        return std::nullopt;
      if (!parseUint(f->substr(hash + 1), pos.file)) return std::nullopt;
    }
    const auto line = nextUint();
    const auto col = nextUint();
    if (!line || !col) return std::nullopt;
    pos.line = *line;
    pos.column = *col;
    return pos;
  }

 private:
  static bool isSpace(char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' ||
           c == '\f';
  }
  void skipSpace() const {
    while (pos_ < text_.size() && isSpace(text_[pos_])) ++pos_;
  }

  std::string_view text_;
  mutable std::size_t pos_ = 0;
};

/// Parses the whole database out of one contiguous buffer. Lines are
/// sliced with find('\n') — the buffer is read exactly once and the only
/// allocations left are the item vectors and genuinely unique names.
class Reader {
 public:
  explicit Reader(std::string_view buffer, Sections sections)
      : buffer_(buffer), sections_(sections) {}

  ReadResult run() {
    if (trim(nextLine()) != "<PDB 1.0>") {
      error("missing or malformed <PDB 1.0> header");
      return std::move(result_);
    }
    while (cursor_ < buffer_.size()) {
      const std::string_view text = trim(nextLine());
      ++line_no_;
      if (text.empty()) {
        flush();
        continue;
      }
      if (current_kind_ == std::nullopt) {
        startItem(text);
      } else if (!skip_) {
        attribute(text);
      }
    }
    flush();
    result_.pdb.reindex();
    result_.pdb.setOffsetUnit(OffsetUnit::Line);
    result_.loaded = sections_;
    return std::move(result_);
  }

  /// Sections present in the input but left unloaded by the mask.
  [[nodiscard]] std::uint64_t skippedSectionCount() const {
    std::uint64_t n = 0;
    for (auto bits = static_cast<std::uint16_t>(skipped_present_); bits != 0;
         bits &= bits - 1)
      ++n;
    return n;
  }

 private:
  std::string_view nextLine() {
    const std::size_t start = cursor_;
    const std::size_t nl = buffer_.find('\n', start);
    if (nl == std::string_view::npos) {
      cursor_ = buffer_.size();
      return buffer_.substr(start);
    }
    cursor_ = nl + 1;
    return buffer_.substr(start, nl - start);
  }

  void error(std::string message) {
    result_.errors.push_back("line " + std::to_string(line_no_) + ": " +
                             std::move(message));
  }

  void startItem(std::string_view text) {
    const auto hash = text.find('#');
    const auto space = text.find(' ');
    if (hash == std::string_view::npos || (space != std::string_view::npos &&
                                           hash > space)) {
      error("expected item header, got '" + std::string(text) + "'");
      return;
    }
    const auto kind = kindFromPrefix(text.substr(0, hash));
    if (!kind) {
      error("unknown item prefix in '" + std::string(text) + "'");
      return;
    }
    if (!hasSections(sections_, sectionOf(*kind))) {
      // Lazy read: remember the section exists, decode nothing.
      skipped_present_ |= sectionOf(*kind);
      current_kind_ = *kind;
      skip_ = true;
      return;
    }
    const std::string_view id_text =
        text.substr(hash + 1, space == std::string_view::npos
                                  ? std::string_view::npos
                                  : space - hash - 1);
    std::uint32_t id = 0;
    if (!parseUint(id_text, id)) {
      error("malformed item id in '" + std::string(text) + "'");
      return;
    }
    // Zero-copy: the name aliases the parse buffer (the file-level entry
    // points park the buffer in the PdbFile as a backing).
    const std::string_view name =
        space == std::string_view::npos ? std::string_view{}
                                        : trim(text.substr(space + 1));
    current_kind_ = *kind;
    const auto off = static_cast<std::uint64_t>(line_no_);
    switch (*kind) {
      case ItemKind::SourceFile: file_ = {}; file_.id = id; file_.name = name; file_.src_offset = off; break;
      case ItemKind::Routine: routine_ = {}; routine_.id = id; routine_.name = name; routine_.src_offset = off; break;
      case ItemKind::Class: class_ = {}; class_.id = id; class_.name = name; class_.src_offset = off; break;
      case ItemKind::Type: type_ = {}; type_.id = id; type_.name = name; type_.src_offset = off; break;
      case ItemKind::Template: template_ = {}; template_.id = id; template_.name = name; template_.src_offset = off; break;
      case ItemKind::Namespace: namespace_ = {}; namespace_.id = id; namespace_.name = name; namespace_.src_offset = off; break;
      case ItemKind::Macro: macro_ = {}; macro_.id = id; macro_.name = name; macro_.src_offset = off; break;
      case ItemKind::DefUse: {
        def_use_ = {};
        def_use_.id = id;
        def_use_.src_offset = off;
        // Header carries the owning routine: "du#3 ro#7".
        Fields fields(name);
        const auto ref = fields.nextRef();
        if (ref && ref->kind == ItemKind::Routine) def_use_.routine = ref->id;
        else error("malformed du header routine in '" + std::string(text) + "'");
        break;
      }
      case ItemKind::DynProf:
        dyn_prof_ = {};
        dyn_prof_.id = id;
        dyn_prof_.name = name;
        dyn_prof_.src_offset = off;
        break;
    }
  }

  void flush() {
    if (!current_kind_) return;
    if (skip_) {
      skip_ = false;
      current_kind_ = std::nullopt;
      return;
    }
    switch (*current_kind_) {
      case ItemKind::SourceFile: result_.pdb.addSourceFile(std::move(file_)); break;
      case ItemKind::Routine: result_.pdb.addRoutine(std::move(routine_)); break;
      case ItemKind::Class: result_.pdb.addClass(std::move(class_)); break;
      case ItemKind::Type: result_.pdb.addType(std::move(type_)); break;
      case ItemKind::Template: result_.pdb.addTemplate(std::move(template_)); break;
      case ItemKind::Namespace: result_.pdb.addNamespace(std::move(namespace_)); break;
      case ItemKind::Macro: result_.pdb.addMacro(std::move(macro_)); break;
      case ItemKind::DefUse: result_.pdb.addDefUse(std::move(def_use_)); break;
      case ItemKind::DynProf: result_.pdb.addDynProf(std::move(dyn_prof_)); break;
    }
    current_kind_ = std::nullopt;
  }

  /// Rest of line after the key (preserves internal spacing for text).
  static std::string_view restAfterKey(std::string_view text) {
    const auto space = text.find(' ');
    return space == std::string_view::npos ? std::string_view{}
                                           : trim(text.substr(space + 1));
  }

  /// Escaped text (ttext/mtext): most lines carry no escape at all, in
  /// which case the raw bytes are the value and can alias the buffer;
  /// otherwise the unescaped copy is parked in the database's arena.
  std::string_view unescaped(std::string_view raw) {
    if (raw.find('\\') == std::string_view::npos) return raw;
    return result_.pdb.own(unescapePdbString(raw));
  }

  void attribute(std::string_view text) {
    const auto space = text.find(' ');
    const std::string_view key =
        space == std::string_view::npos ? text : text.substr(0, space);
    Fields fields(space == std::string_view::npos ? std::string_view{}
                                                  : text.substr(space + 1));
    const auto expectPos = [&](Pos& out) {
      if (const auto p = fields.nextPos()) out = *p;
      else error("malformed position in '" + std::string(text) + "'");
    };
    const auto expectExtent = [&](Extent& out) {
      const auto a = fields.nextPos(), b = fields.nextPos(), c = fields.nextPos(),
                 d = fields.nextPos();
      if (a && b && c && d) out = {*a, *b, *c, *d};
      else error("malformed extent in '" + std::string(text) + "'");
    };

    switch (*current_kind_) {
      case ItemKind::SourceFile:
        if (key == "sinc") {
          if (const auto ref = fields.nextRef()) file_.includes.push_back(ref->id);
        } else if (key == "ssys") {
          file_.system = true;
        } else {
          error("unknown source-file attribute '" + std::string(key) + "'");
        }
        break;

      case ItemKind::Routine:
        if (key == "rloc") expectPos(routine_.location);
        else if (key == "rclass" || key == "rnspace") routine_.parent = fields.nextRef();
        else if (key == "racs") routine_.access = fields.nextInterned();
        else if (key == "rsig") {
          if (const auto ref = fields.nextRef()) routine_.signature = ref->id;
        } else if (key == "rlink") routine_.linkage = PdbFile::intern(restAfterKey(text));
        else if (key == "rstore") routine_.storage = fields.nextInterned();
        else if (key == "rvirt") routine_.virtuality = fields.nextInterned();
        else if (key == "rkind") routine_.kind = fields.nextInterned();
        else if (key == "rstatic") routine_.is_static = true;
        else if (key == "rinline") routine_.is_inline = true;
        else if (key == "rexplicit") routine_.is_explicit = true;
        else if (key == "rtempl") {
          if (const auto ref = fields.nextRef()) routine_.template_id = ref->id;
        } else if (key == "rspecl") routine_.is_specialization = true;
        else if (key == "rdef") routine_.defined = true;
        else if (key == "rcall") {
          RoutineItem::Call call;
          const auto ref = fields.nextRef();
          const auto virt = fields.next();
          const auto pos = fields.nextPos();
          if (ref && virt && pos) {
            call.routine = ref->id;
            call.is_virtual = *virt == "virt";
            call.position = *pos;
            routine_.calls.push_back(call);
          } else {
            error("malformed rcall");
          }
        } else if (key == "rpos") expectExtent(routine_.extent);
        else error("unknown routine attribute '" + std::string(key) + "'");
        break;

      case ItemKind::Class:
        if (key == "cloc") expectPos(class_.location);
        else if (key == "cclass" || key == "cnspace") class_.parent = fields.nextRef();
        else if (key == "cacs") class_.access = fields.nextInterned();
        else if (key == "ckind") class_.kind = fields.nextInterned();
        else if (key == "ctempl") {
          if (const auto ref = fields.nextRef()) class_.template_id = ref->id;
        } else if (key == "cspecl") class_.is_specialization = true;
        else if (key == "cbase") {
          ClassItem::Base base;
          const auto acs = fields.next();
          const auto virt = fields.next();
          const auto ref = fields.nextRef();
          if (acs && virt && ref) {
            base.access = PdbFile::intern(*acs);
            base.is_virtual = *virt == "virt";
            base.cls = ref->id;
            class_.bases.push_back(base);
          } else {
            error("malformed cbase");
          }
        } else if (key == "cfriend") {
          ClassItem::Friend f;
          const auto what = fields.next();
          const auto name = fields.next();
          if (what && name) {
            f.is_class = *what == "class";
            f.name = *name;
            if (!fields.empty()) f.ref = fields.nextRef();
            class_.friends.push_back(f);
          } else {
            error("malformed cfriend");
          }
        } else if (key == "cfunc") {
          ClassItem::MemberFunc mf;
          const auto ref = fields.nextRef();
          const auto pos = fields.nextPos();
          if (ref && pos) {
            mf.routine = ref->id;
            mf.location = *pos;
            class_.funcs.push_back(mf);
          } else {
            error("malformed cfunc");
          }
        } else if (key == "cmem") {
          ClassItem::Member m;
          m.name = restAfterKey(text);
          class_.members.push_back(m);
        } else if (key == "cmloc") {
          if (!class_.members.empty()) expectPos(class_.members.back().location);
        } else if (key == "cmacs") {
          if (!class_.members.empty())
            class_.members.back().access = fields.nextInterned();
        } else if (key == "cmkind") {
          if (!class_.members.empty())
            class_.members.back().kind = fields.nextInterned();
        } else if (key == "cmtype") {
          if (!class_.members.empty()) {
            if (const auto ref = fields.nextRef()) class_.members.back().type = *ref;
          }
        } else if (key == "cpos") expectExtent(class_.extent);
        else error("unknown class attribute '" + std::string(key) + "'");
        break;

      case ItemKind::Type:
        if (key == "ykind") type_.kind = fields.nextInterned();
        else if (key == "yikind") type_.ikind = PdbFile::intern(restAfterKey(text));
        else if (key == "yptr" || key == "yref" || key == "ytref" || key == "yelem")
          type_.ref = fields.nextRef();
        else if (key == "ysize") {
          if (const auto v = fields.nextUint()) type_.array_size = *v;
        } else if (key == "yqual") {
          type_.qualifiers.push_back(fields.nextInterned());
        } else if (key == "yrett") type_.return_type = fields.nextRef();
        else if (key == "yargt") {
          if (const auto ref = fields.nextRef()) type_.params.push_back(*ref);
        } else if (key == "yellip") type_.has_ellipsis = true;
        else if (key == "yexcep") {
          type_.has_exception_spec = true;
          if (const auto ref = fields.nextRef()) type_.exception_specs.push_back(*ref);
        } else if (key == "yenum") {
          const auto ename = fields.next();
          const auto value = fields.next();
          long long parsed = 0;
          const bool value_ok =
              value && !value->empty() &&
              std::from_chars(value->data(), value->data() + value->size(),
                              parsed).ec == std::errc{};
          if (ename && !ename->empty() && value_ok) {
            type_.enumerators.emplace_back(*ename, parsed);
          } else {
            error("malformed yenum");
          }
        } else error("unknown type attribute '" + std::string(key) + "'");
        break;

      case ItemKind::Template:
        if (key == "tloc") expectPos(template_.location);
        else if (key == "tclass" || key == "tnspace") template_.parent = fields.nextRef();
        else if (key == "tacs") template_.access = fields.nextInterned();
        else if (key == "tkind") template_.kind = fields.nextInterned();
        else if (key == "ttext")
          template_.text = unescaped(restAfterKey(text));
        else if (key == "tpos") expectExtent(template_.extent);
        else error("unknown template attribute '" + std::string(key) + "'");
        break;

      case ItemKind::Namespace:
        if (key == "nloc") expectPos(namespace_.location);
        else if (key == "nalias") namespace_.alias = restAfterKey(text);
        else if (key == "nmem") {
          if (const auto ref = fields.nextRef()) namespace_.members.push_back(*ref);
        } else error("unknown namespace attribute '" + std::string(key) + "'");
        break;

      case ItemKind::Macro:
        if (key == "mloc") expectPos(macro_.location);
        else if (key == "mkind") macro_.kind = fields.nextInterned();
        else if (key == "mtext") macro_.text = unescaped(restAfterKey(text));
        else error("unknown macro attribute '" + std::string(key) + "'");
        break;

      case ItemKind::DefUse:
        if (key == "ddef" || key == "duse") {
          DefUseItem::Event event;
          event.op = key == "ddef" ? DuOp::Def : DuOp::Use;
          const auto flags_text = fields.next();
          const auto flags =
              flags_text ? du::flagsFromText(*flags_text) : std::nullopt;
          const auto name = fields.next();
          const auto pos = fields.nextPos();
          if (flags && name && pos) {
            event.flags = *flags;
            event.name = *name;  // zero-copy: aliases the parse buffer
            event.pos = *pos;
            def_use_.events.push_back(event);
          } else {
            error("malformed " + std::string(key));
          }
        } else if (key == "dmark") {
          DefUseItem::Event event;
          event.op = DuOp::Marker;
          const auto name = fields.next();
          const auto pos = fields.nextPos();
          if (name && pos) {
            // Marker kinds are a closed vocabulary — intern them.
            event.name = PdbFile::intern(*name);
            event.pos = *pos;
            def_use_.events.push_back(event);
          } else {
            error("malformed dmark");
          }
        } else error("unknown def-use attribute '" + std::string(key) + "'");
        break;

      case ItemKind::DynProf:
        if (key == "plink") {
          if (const auto ref = fields.nextRef();
              ref && ref->kind == ItemKind::Routine)
            dyn_prof_.routine = ref->id;
          else
            error("malformed plink");
        } else if (key == "pdata") {
          const auto calls = fields.nextU64();
          const auto subrs = fields.nextU64();
          const auto incl = fields.nextU64();
          const auto excl = fields.nextU64();
          const auto threads = fields.nextUint();
          const auto contexts = fields.nextUint();
          if (calls && subrs && incl && excl && threads && contexts) {
            dyn_prof_.calls = *calls;
            dyn_prof_.child_calls = *subrs;
            dyn_prof_.inclusive_ns = *incl;
            dyn_prof_.exclusive_ns = *excl;
            dyn_prof_.threads = *threads;
            dyn_prof_.contexts = *contexts;
          } else {
            error("malformed pdata");
          }
        } else error("unknown dynamic-profile attribute '" + std::string(key) + "'");
        break;
    }
  }

  std::string_view buffer_;
  Sections sections_ = Sections::All;
  Sections skipped_present_ = Sections::None;
  std::size_t cursor_ = 0;
  ReadResult result_;
  std::size_t line_no_ = 1;  // header consumed before the loop
  bool skip_ = false;  // current item's section is outside sections_
  std::optional<ItemKind> current_kind_;
  SourceFileItem file_;
  RoutineItem routine_;
  ClassItem class_;
  TypeItem type_;
  TemplateItem template_;
  NamespaceItem namespace_;
  MacroItem macro_;
  DefUseItem def_use_;
  DynProfItem dyn_prof_;
};

}  // namespace

ReadResult readFromBuffer(std::string_view text, Sections sections) {
  Reader reader(text, sections);
  ReadResult result = reader.run();
  if (result.ok()) {
    trace::count(trace::Counter::PdbFilesRead);
    trace::count(trace::Counter::PdbItemsRead, result.pdb.itemCount());
    trace::countKey("pdb.read.by_format", "ascii");
    if (const auto skipped = reader.skippedSectionCount(); skipped > 0)
      trace::count(trace::Counter::PdbSectionsSkipped, skipped);
  }
  return result;
}

ReadResult readFromBuffer(std::string_view text) {
  return readFromBuffer(text, Sections::All);
}

ReadResult readOwning(std::string text, Sections sections) {
  // The result aliases the buffer, so the buffer moves into a shared
  // backing the parsed database keeps alive.
  auto backing = std::make_shared<const std::string>(std::move(text));
  ReadResult result = readFromBuffer(*backing, sections);
  result.pdb.adoptBacking(std::move(backing));
  return result;
}

ReadResult read(std::istream& is) {
  // Slurp the stream; parsing one contiguous buffer beats getline-per-line.
  std::ostringstream ss;
  ss << is.rdbuf();
  return readOwning(std::move(ss).str(), Sections::All);
}

ReadResult readFromString(const std::string& text) {
  return readOwning(text, Sections::All);
}

std::optional<ReadResult> readFromFile(const std::string& path) {
  PDT_TRACE_SCOPE("pdb.read", path);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  // One-shot read of the whole file instead of line-by-line getline.
  std::string buffer;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size > 0) {
    buffer.resize(static_cast<std::size_t>(size));
    in.seekg(0, std::ios::beg);
    in.read(buffer.data(), size);
    buffer.resize(static_cast<std::size_t>(in.gcount()));
  }
  return readOwning(std::move(buffer), Sections::All);
}

}  // namespace pdt::pdb
