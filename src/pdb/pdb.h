// In-memory model of a program database (PDB) file.
//
// This is the typed representation of the ASCII format documented in
// docs/PDB_FORMAT.md (paper Table 1 / Figure 3). The IL Analyzer fills it
// from the IL; the writer/reader serialize it; DUCTAPE exposes it through
// the paper's object-oriented API.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/interner.h"

namespace pdt::pdb {

enum class ItemKind : std::uint8_t {
  SourceFile,  // so
  Routine,     // ro
  Class,       // cl
  Type,        // ty
  Template,    // te
  Namespace,   // na
  Macro,       // ma
  DefUse,      // du
  DynProf,     // dp
};

[[nodiscard]] std::string_view prefixOf(ItemKind kind);
[[nodiscard]] std::optional<ItemKind> kindFromPrefix(std::string_view prefix);

/// Bitmask of the nine item sections. Readers accept a mask and skip the
/// sections a tool does not need (the binary format's section table makes
/// the skip O(1); the ASCII reader skips item bodies without decoding
/// their attributes).
enum class Sections : std::uint16_t {
  None = 0,
  SourceFiles = 1u << 0,
  Routines = 1u << 1,
  Classes = 1u << 2,
  Types = 1u << 3,
  Templates = 1u << 4,
  Namespaces = 1u << 5,
  Macros = 1u << 6,
  DefUses = 1u << 7,
  DynProfs = 1u << 8,
  All = 0x1ff,
};

[[nodiscard]] constexpr Sections operator|(Sections a, Sections b) {
  return static_cast<Sections>(static_cast<std::uint16_t>(a) |
                               static_cast<std::uint16_t>(b));
}
[[nodiscard]] constexpr Sections operator&(Sections a, Sections b) {
  return static_cast<Sections>(static_cast<std::uint16_t>(a) &
                               static_cast<std::uint16_t>(b));
}
[[nodiscard]] constexpr Sections operator~(Sections a) {
  return static_cast<Sections>(~static_cast<std::uint16_t>(a) & 0x1ff);
}
inline Sections& operator|=(Sections& a, Sections b) { return a = a | b; }

/// True when `set` contains every section in `want`.
[[nodiscard]] constexpr bool hasSections(Sections set, Sections want) {
  return (set & want) == want;
}

[[nodiscard]] constexpr Sections sectionOf(ItemKind kind) {
  return static_cast<Sections>(1u << static_cast<std::uint8_t>(kind));
}

/// What an item's `src_offset` counts: the source line (ASCII reader), the
/// byte offset of its record (binary reader), or nothing (databases built
/// in memory, merged databases).
enum class OffsetUnit : std::uint8_t { None, Line, Byte };

/// Reference to another item: "ro#7".
struct ItemRef {
  ItemKind kind = ItemKind::Type;
  std::uint32_t id = 0;

  [[nodiscard]] bool valid() const { return id != 0; }
  [[nodiscard]] std::string str() const;
  friend bool operator==(const ItemRef&, const ItemRef&) = default;
};

/// A source position: "so#73 72 9"; id 0 renders as "NULL 0 0".
struct Pos {
  std::uint32_t file = 0;  // so item id
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool valid() const { return file != 0; }
  friend bool operator==(const Pos&, const Pos&) = default;
};

/// Four-position extent: header begin/end, body begin/end (rpos/cpos/tpos).
struct Extent {
  Pos header_begin, header_end, body_begin, body_end;
};

struct SourceFileItem {
  std::uint32_t id = 0;
  std::string_view name;  // path
  std::vector<std::uint32_t> includes;  // so ids, in include order
  bool system = false;
  std::uint64_t src_offset = 0;  // see PdbFile::offsetUnit()
};

// Every string field of an item — names, template/macro text, aliases as
// well as the enum-like attributes (access, linkage, kind, ...) — is a
// string_view over storage that outlives the item:
//
//  * string literals (the analyzer/frontends assign from fixed
//    vocabularies),
//  * the process-wide intern table (PdbFile::intern — producers route
//    computed names through it),
//  * a read buffer the owning PdbFile has adopted as a backing
//    (PdbFile::adoptBacking — the zero-copy readers alias the mmap'd or
//    slurped file bytes directly), or
//  * the owning PdbFile's own arena (PdbFile::own — per-database storage
//    released with the database, used for strings synthesized during a
//    parse, e.g. unescaped template text).
//
// This is what makes reads zero-copy and items cheap to copy; the cost is
// an ownership rule: whoever assigns a computed std::string must park it
// in one of the four storages first. Assigning a std::string temporary
// compiles (string -> string_view converts implicitly) and dangles.

struct RoutineItem {
  std::uint32_t id = 0;
  std::string_view name;
  Pos location;
  std::optional<ItemRef> parent;  // cl or na
  std::string_view access = "NA";  // pub/prot/priv/NA
  std::uint32_t signature = 0;     // ty id
  std::string_view linkage = "C++";
  std::string_view storage = "NA";
  std::string_view virtuality = "no";  // no/virt/pure
  std::string_view kind = "routine";   // routine/ctor/dtor/conv/op
  std::optional<std::uint32_t> template_id;  // te id (instantiations)
  bool is_specialization = false;
  bool is_static = false;
  bool is_inline = false;
  bool is_explicit = false;
  bool defined = false;

  struct Call {
    std::uint32_t routine = 0;  // ro id
    bool is_virtual = false;
    Pos position;
  };
  std::vector<Call> calls;
  Extent extent;
  std::uint64_t src_offset = 0;
};

struct ClassItem {
  std::uint32_t id = 0;
  std::string_view name;
  Pos location;
  std::optional<ItemRef> parent;
  std::string_view access = "NA";
  std::string_view kind = "class";  // class/struct/union
  std::optional<std::uint32_t> template_id;  // te id
  bool is_specialization = false;

  struct Base {
    std::uint32_t cls = 0;  // cl id
    std::string_view access = "pub";
    bool is_virtual = false;
  };
  std::vector<Base> bases;

  struct Friend {
    bool is_class = false;
    std::string_view name;
    std::optional<ItemRef> ref;
  };
  std::vector<Friend> friends;

  struct MemberFunc {
    std::uint32_t routine = 0;  // ro id
    Pos location;
  };
  std::vector<MemberFunc> funcs;

  struct Member {
    std::string_view name;
    Pos location;
    std::string_view access = "pub";
    std::string_view kind = "var";  // var/type
    ItemRef type;
  };
  std::vector<Member> members;
  Extent extent;
  std::uint64_t src_offset = 0;
};

struct TypeItem {
  std::uint32_t id = 0;
  std::string_view name;  // C++ spelling
  std::string_view kind;  // ykind: bool/char/int/.../ptr/ref/tref/func/enum/array/tparam
  std::string_view ikind;  // builtin detail (yikind)
  std::optional<ItemRef> ref;     // pointee/referee/qualified base/element
  std::vector<std::string_view> qualifiers;  // const/volatile (tref, memfn const)
  std::optional<ItemRef> return_type;
  std::vector<ItemRef> params;
  bool has_ellipsis = false;
  std::vector<ItemRef> exception_specs;
  bool has_exception_spec = false;
  std::int64_t array_size = -1;
  /// Enum types: the enumerators and their values ("yenum" lines).
  std::vector<std::pair<std::string_view, long long>> enumerators;
  std::uint64_t src_offset = 0;
};

struct TemplateItem {
  std::uint32_t id = 0;
  std::string_view name;
  Pos location;
  std::optional<ItemRef> parent;
  std::string_view access = "NA";
  std::string_view kind = "class";  // class/func/memfunc/statmem
  std::string_view text;
  Extent extent;
  std::uint64_t src_offset = 0;
};

struct NamespaceItem {
  std::uint32_t id = 0;
  std::string_view name;
  Pos location;
  std::vector<ItemRef> members;
  std::string_view alias;  // target name when this is an alias
  std::uint64_t src_offset = 0;
};

struct MacroItem {
  std::uint32_t id = 0;
  std::string_view name;
  Pos location;
  std::string_view kind = "def";  // def/undef
  std::string_view text;
  std::uint64_t src_offset = 0;
};

/// What one def-use event does to its variable.
enum class DuOp : std::uint8_t {
  Def,     // writes the named storage
  Use,     // reads the named storage
  Marker,  // structural control-flow marker (name = marker kind)
};

/// Flag bits on a def/use event (DefUseItem::Event::flags).
namespace du {
inline constexpr std::uint8_t kPointer = 1u << 0;    // pointer-typed variable
inline constexpr std::uint8_t kReference = 1u << 1;  // reference-typed variable
inline constexpr std::uint8_t kMember = 1u << 2;     // member access (a.b / p->b)
inline constexpr std::uint8_t kNullValue = 1u << 3;  // def assigns a null constant
inline constexpr std::uint8_t kUninit = 1u << 4;     // def leaves storage uninitialized
inline constexpr std::uint8_t kParam = 1u << 5;      // def of a routine parameter
inline constexpr std::uint8_t kUnknown = 1u << 6;    // def with unanalyzable value
inline constexpr std::uint8_t kDeref = 1u << 7;      // use dereferences a pointer
/// Mnemonic letters, one per bit, in bit order ("PRMNUAXD"); "-" = none.
[[nodiscard]] std::string flagsText(std::uint8_t flags);
[[nodiscard]] std::optional<std::uint8_t> flagsFromText(std::string_view text);
}  // namespace du

/// Per-routine ordered def-use stream ("du" items). One item per routine
/// with a body; `events` lists defs, uses, and structural markers in a
/// deterministic source walk order. Marker names come from a small closed
/// vocabulary (if/then/else/endif, loop/body/endloop, switch/case/
/// endswitch, ret/break/continue, irregular) that lets consumers rebuild a
/// CFG-lite without reparsing sources (docs/PDB_FORMAT.md §du).
struct DefUseItem {
  std::uint32_t id = 0;
  std::uint32_t routine = 0;  // ro id

  struct Event {
    DuOp op = DuOp::Use;
    std::uint8_t flags = 0;
    std::string_view name;  // variable path ("x", "this.top") or marker kind
    Pos pos;
    friend bool operator==(const Event&, const Event&) = default;
  };
  std::vector<Event> events;
  std::uint64_t src_offset = 0;
};

/// Measured cost of one profiled routine ("dp" items) — the dynamic half
/// of the paper's Figure 7, stored next to the static sections so tools
/// can join structure with measured cost. One item per distinct TAU
/// profile entry (base name + instantiation type); counts and times are
/// aggregated over every thread/process profile that was merged in
/// (src/tau/profile_merge, the tauprof tool).
struct DynProfItem {
  std::uint32_t id = 0;
  std::uint32_t routine = 0;  // ro id; 0 when no static routine matched
  std::string_view name;      // TAU display name, e.g. "push() <Stack<int>>"
  std::uint64_t calls = 0;
  std::uint64_t child_calls = 0;
  std::uint64_t inclusive_ns = 0;
  std::uint64_t exclusive_ns = 0;
  std::uint32_t threads = 0;   // thread profiles that contributed
  std::uint32_t contexts = 0;  // distinct (node, context) processes
  std::uint64_t src_offset = 0;
};

/// One program database. Ids are unique per item kind; lookup maps are
/// maintained by the mutators.
class PdbFile {
 public:
  static constexpr std::string_view kVersion = "1.0";

  /// Interned-string table for attribute values: returns a view that stays
  /// valid for the life of the process (shared across all databases).
  static std::string_view intern(std::string_view text) {
    return internString(text);
  }

  /// Keeps `storage` alive for as long as this database (or any copy of
  /// it) lives. The zero-copy readers park the parse buffer here so item
  /// views can alias it; shared_ptr semantics make copies of the PdbFile
  /// share the backing instead of duplicating the bytes.
  void adoptBacking(std::shared_ptr<const void> storage) {
    if (storage != nullptr) backings_.push_back(std::move(storage));
  }

  /// Adopts every backing (and the arena) of `other` — required when items
  /// are copied across databases (merge) and their views must outlive the
  /// source.
  void adoptBackingsOf(const PdbFile& other) {
    backings_.insert(backings_.end(), other.backings_.begin(),
                     other.backings_.end());
    if (other.arena_ != nullptr) backings_.push_back(other.arena_);
  }

  /// Moves the item vectors (and id counters) of the sections in `which`
  /// out of `other` into this database, adopting other's backings so the
  /// moved views stay valid, then rebuilds the id->index maps. This is how
  /// snapshot widening combines freshly-parsed sections with the ones
  /// already materialized — a flat splice, no string data is copied.
  void adoptSections(PdbFile&& other, Sections which);

  /// Copies `text` into this database's own arena and returns a stable
  /// view. Unlike intern(), the storage is released with the database —
  /// use it for strings synthesized during a parse (unescaped template
  /// text) whose lifetime should not be the whole process.
  std::string_view own(std::string_view text) { return own(std::string(text)); }
  std::string_view own(std::string&& text) {
    // Deque: grow never relocates elements, so views into the stored
    // strings stay valid (a vector would invalidate SSO strings on grow).
    if (arena_ == nullptr) arena_ = std::make_shared<std::deque<std::string>>();
    arena_->push_back(std::move(text));
    return arena_->back();
  }

  std::uint32_t addSourceFile(SourceFileItem item);
  std::uint32_t addRoutine(RoutineItem item);
  std::uint32_t addClass(ClassItem item);
  std::uint32_t addType(TypeItem item);
  std::uint32_t addTemplate(TemplateItem item);
  std::uint32_t addNamespace(NamespaceItem item);
  std::uint32_t addMacro(MacroItem item);
  std::uint32_t addDefUse(DefUseItem item);
  std::uint32_t addDynProf(DynProfItem item);

  [[nodiscard]] const std::vector<SourceFileItem>& sourceFiles() const { return files_; }
  [[nodiscard]] const std::vector<RoutineItem>& routines() const { return routines_; }
  [[nodiscard]] const std::vector<ClassItem>& classes() const { return classes_; }
  [[nodiscard]] const std::vector<TypeItem>& types() const { return types_; }
  [[nodiscard]] const std::vector<TemplateItem>& templates() const { return templates_; }
  [[nodiscard]] const std::vector<NamespaceItem>& namespaces() const { return namespaces_; }
  [[nodiscard]] const std::vector<MacroItem>& macros() const { return macros_; }
  [[nodiscard]] const std::vector<DefUseItem>& defUses() const { return def_uses_; }
  [[nodiscard]] const std::vector<DynProfItem>& dynProfs() const { return dyn_profs_; }

  // Mutable access for pdbmerge and the analyzer.
  [[nodiscard]] std::vector<SourceFileItem>& sourceFiles() { return files_; }
  [[nodiscard]] std::vector<RoutineItem>& routines() { return routines_; }
  [[nodiscard]] std::vector<ClassItem>& classes() { return classes_; }
  [[nodiscard]] std::vector<TypeItem>& types() { return types_; }
  [[nodiscard]] std::vector<TemplateItem>& templates() { return templates_; }
  [[nodiscard]] std::vector<NamespaceItem>& namespaces() { return namespaces_; }
  [[nodiscard]] std::vector<MacroItem>& macros() { return macros_; }
  [[nodiscard]] std::vector<DefUseItem>& defUses() { return def_uses_; }
  [[nodiscard]] std::vector<DynProfItem>& dynProfs() { return dyn_profs_; }

  [[nodiscard]] const SourceFileItem* findSourceFile(std::uint32_t id) const;
  [[nodiscard]] const RoutineItem* findRoutine(std::uint32_t id) const;
  [[nodiscard]] const ClassItem* findClass(std::uint32_t id) const;
  [[nodiscard]] const TypeItem* findType(std::uint32_t id) const;
  [[nodiscard]] const TemplateItem* findTemplate(std::uint32_t id) const;
  [[nodiscard]] const NamespaceItem* findNamespace(std::uint32_t id) const;
  [[nodiscard]] const MacroItem* findMacro(std::uint32_t id) const;
  [[nodiscard]] const DefUseItem* findDefUse(std::uint32_t id) const;
  [[nodiscard]] const DynProfItem* findDynProf(std::uint32_t id) const;

  [[nodiscard]] std::size_t itemCount() const;

  /// What the items' `src_offset` fields count. Readers set this;
  /// databases built or merged in memory leave it at None (their offsets
  /// are meaningless and diagnostics omit them).
  [[nodiscard]] OffsetUnit offsetUnit() const { return offset_unit_; }
  void setOffsetUnit(OffsetUnit unit) { offset_unit_ = unit; }

  /// Rebuilds the id->index maps (call after bulk mutation, e.g. merge).
  void reindex();

 private:
  template <typename T>
  std::uint32_t add(std::vector<T>& vec,
                    std::unordered_map<std::uint32_t, std::size_t>& index,
                    T item, std::uint32_t& next_id);

  std::vector<SourceFileItem> files_;
  std::vector<RoutineItem> routines_;
  std::vector<ClassItem> classes_;
  std::vector<TypeItem> types_;
  std::vector<TemplateItem> templates_;
  std::vector<NamespaceItem> namespaces_;
  std::vector<MacroItem> macros_;
  std::vector<DefUseItem> def_uses_;
  std::vector<DynProfItem> dyn_profs_;

  std::unordered_map<std::uint32_t, std::size_t> file_index_, routine_index_,
      class_index_, type_index_, template_index_, namespace_index_, macro_index_,
      def_use_index_, dyn_prof_index_;
  std::uint32_t next_file_id_ = 1, next_routine_id_ = 1, next_class_id_ = 1,
                next_type_id_ = 1, next_template_id_ = 1, next_namespace_id_ = 1,
                next_macro_id_ = 1, next_def_use_id_ = 1, next_dyn_prof_id_ = 1;
  OffsetUnit offset_unit_ = OffsetUnit::None;

  // Ownership for item string_views: adopted read buffers and the
  // database's own string arena. shared_ptr so PdbFile stays copyable and
  // copies share rather than duplicate the storage.
  std::vector<std::shared_ptr<const void>> backings_;
  std::shared_ptr<std::deque<std::string>> arena_;
};

}  // namespace pdt::pdb
