// Shared layout constants and integrity checksum for the binary PDB v2
// container (docs/PDB_FORMAT.md §binary-v2). Internal to the pdb library:
// binary_writer.cpp and binary_reader.cpp must agree on these byte for
// byte, so they live in one place.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace pdt::pdb::binary {

/// One little-endian u64 lane. memcpy compiles to a single load (plus a
/// byte swap on big-endian hosts); assembling the lane byte-by-byte with
/// shifts does not reliably fold and was measured ~5x slower, which made
/// the integrity pass the largest term of a full-file read.
inline std::uint64_t loadLaneLE(const char* p) {
  std::uint64_t lane = 0;
  std::memcpy(&lane, p, sizeof lane);
  if constexpr (std::endian::native == std::endian::big) {
    std::uint64_t swapped = 0;
    for (int b = 0; b < 8; ++b)
      swapped |= ((lane >> (8 * b)) & 0xff) << (8 * (7 - b));
    lane = swapped;
  }
  return lane;
}

/// magic(8) + section_count(u32) + total_size(u64) + strtab_offset(u64) +
/// strtab_size(u64) + strtab_checksum(u64).
inline constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 8 + 8 + 8;
/// kind(u32) + item_count(u32) + offset(u64) + size(u64) + checksum(u64).
///
/// The per-section (and string-table) checksums exist for the zero-copy
/// lazy read path: a full read verifies the whole-file trailing checksum
/// as before, but a masked read over an mmap'd file verifies only the
/// string table and the sections it was asked for — an unrequested
/// section's pages are never faulted in.
inline constexpr std::size_t kSectionEntrySize = 4 + 4 + 8 + 8 + 8;

/// Container checksum: FNV-1a folded over 8-byte little-endian lanes
/// (tail lane zero-padded, then length-framed). One multiply per eight
/// input bytes instead of one per byte keeps the integrity pass off the
/// read path's critical cost — the byte-wise FNV's serial multiply chain
/// was the single largest term in a lazy section read.
inline std::uint64_t checksum64(std::string_view bytes) {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t h = 0xcbf29ce484222325ull;
  const char* p = bytes.data();
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8)
    h = (h ^ loadLaneLE(p + i)) * kPrime;
  if (i < bytes.size()) {
    std::uint64_t lane = 0;
    for (std::size_t b = 0; i + b < bytes.size(); ++b)
      lane |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(p[i + b]))
              << (8 * b);
    h = (h ^ lane) * kPrime;
  }
  h = (h ^ static_cast<std::uint64_t>(bytes.size())) * kPrime;
  return h;
}

}  // namespace pdt::pdb::binary
