#include "pdb/validate.h"

namespace pdt::pdb {

namespace {

class Validator {
 public:
  Validator(const PdbFile& pdb, Sections loaded) : pdb_(pdb), loaded_(loaded) {}

  std::vector<std::string> run() {
    for (const auto& f : pdb_.sourceFiles()) {
      where_ = "source file '" + std::string(f.name) + "' (so#" + std::to_string(f.id) +
               at(f.src_offset, ItemKind::SourceFile) + ")";
      for (const std::uint32_t inc : f.includes) {
        if (checkable(ItemKind::SourceFile) && pdb_.findSourceFile(inc) == nullptr)
          fail("includes undefined so#" + std::to_string(inc));
      }
    }
    for (const auto& r : pdb_.routines()) {
      where_ = "routine '" + std::string(r.name) + "' (ro#" + std::to_string(r.id) +
               at(r.src_offset, ItemKind::Routine) + ")";
      checkPos(r.location, "location");
      checkParent(r.parent);
      if (checkable(ItemKind::Type) && r.signature != 0 &&
          pdb_.findType(r.signature) == nullptr)
        fail("signature references undefined ty#" + std::to_string(r.signature));
      if (checkable(ItemKind::Template) && r.template_id &&
          pdb_.findTemplate(*r.template_id) == nullptr)
        fail("rtempl references undefined te#" + std::to_string(*r.template_id));
      for (const auto& call : r.calls) {
        if (checkable(ItemKind::Routine) &&
            pdb_.findRoutine(call.routine) == nullptr)
          fail("call references undefined ro#" + std::to_string(call.routine));
        checkPos(call.position, "call site");
      }
      checkExtent(r.extent);
    }
    for (const auto& c : pdb_.classes()) {
      where_ = "class '" + std::string(c.name) + "' (cl#" + std::to_string(c.id) +
               at(c.src_offset, ItemKind::Class) + ")";
      checkPos(c.location, "location");
      checkParent(c.parent);
      if (checkable(ItemKind::Template) && c.template_id &&
          pdb_.findTemplate(*c.template_id) == nullptr)
        fail("ctempl references undefined te#" + std::to_string(*c.template_id));
      for (const auto& b : c.bases) {
        if (checkable(ItemKind::Class) && pdb_.findClass(b.cls) == nullptr)
          fail("base references undefined cl#" + std::to_string(b.cls));
      }
      for (const auto& fr : c.friends) {
        if (fr.ref) checkRef(*fr.ref, "friend");
      }
      for (const auto& mf : c.funcs) {
        if (checkable(ItemKind::Routine) &&
            pdb_.findRoutine(mf.routine) == nullptr)
          fail("member function references undefined ro#" +
               std::to_string(mf.routine));
        checkPos(mf.location, "member function");
      }
      for (const auto& m : c.members) {
        checkRef(m.type, "member '" + std::string(m.name) + "' type");
        checkPos(m.location, "member '" + std::string(m.name) + "'");
      }
      checkExtent(c.extent);
    }
    for (const auto& t : pdb_.types()) {
      where_ = "type '" + std::string(t.name) + "' (ty#" + std::to_string(t.id) +
               at(t.src_offset, ItemKind::Type) + ")";
      if (t.ref) checkRef(*t.ref, "referenced type");
      if (t.return_type) checkRef(*t.return_type, "return type");
      for (const auto& p : t.params) checkRef(p, "parameter type");
      for (const auto& e : t.exception_specs) checkRef(e, "exception spec");
    }
    for (const auto& t : pdb_.templates()) {
      where_ = "template '" + std::string(t.name) + "' (te#" + std::to_string(t.id) +
               at(t.src_offset, ItemKind::Template) + ")";
      checkPos(t.location, "location");
      checkParent(t.parent);
      checkExtent(t.extent);
    }
    for (const auto& n : pdb_.namespaces()) {
      where_ = "namespace '" + std::string(n.name) + "' (na#" + std::to_string(n.id) +
               at(n.src_offset, ItemKind::Namespace) + ")";
      checkPos(n.location, "location");
      for (const auto& m : n.members) checkRef(m, "member");
    }
    for (const auto& m : pdb_.macros()) {
      where_ = "macro '" + std::string(m.name) + "' (ma#" + std::to_string(m.id) +
               at(m.src_offset, ItemKind::Macro) + ")";
      checkPos(m.location, "location");
    }
    for (const auto& d : pdb_.defUses()) {
      where_ = "def-use stream (du#" + std::to_string(d.id) +
               at(d.src_offset, ItemKind::DefUse) + ")";
      if (checkable(ItemKind::Routine) && d.routine != 0 &&
          pdb_.findRoutine(d.routine) == nullptr)
        fail("belongs to undefined ro#" + std::to_string(d.routine));
      if (d.routine == 0) fail("has no owning routine");
      for (const auto& e : d.events)
        checkPos(e.pos, "event '" + std::string(e.name) + "'");
    }
    for (const auto& p : pdb_.dynProfs()) {
      where_ = "dynamic profile '" + std::string(p.name) + "' (dp#" +
               std::to_string(p.id) + at(p.src_offset, ItemKind::DynProf) + ")";
      if (checkable(ItemKind::Routine) && p.routine != 0 &&
          pdb_.findRoutine(p.routine) == nullptr)
        fail("links undefined ro#" + std::to_string(p.routine));
      if (p.inclusive_ns < p.exclusive_ns)
        fail("inclusive time " + std::to_string(p.inclusive_ns) +
             "ns below exclusive time " + std::to_string(p.exclusive_ns) +
             "ns");
    }
    return std::move(errors_);
  }

 private:
  /// True when references *to* this kind can be resolved — i.e. the
  /// section was materialized. A lazy read leaves sections out on purpose;
  /// dangling edges into them are expected, not corruption.
  [[nodiscard]] bool checkable(ItemKind kind) const {
    return hasSections(loaded_, sectionOf(kind));
  }

  /// Where the item's record lives in the file it was read from: ", line
  /// N" (ASCII), ", byte N" (binary), or nothing for databases built in
  /// memory — so corrupt files are actionable without changing messages
  /// elsewhere.
  [[nodiscard]] std::string at(std::uint64_t offset, ItemKind kind) const {
    switch (pdb_.offsetUnit()) {
      case OffsetUnit::Line: return ", line " + std::to_string(offset);
      case OffsetUnit::Byte:
        // Binary offsets are section-relative, so name the section too —
        // "byte 120" alone is not actionable against the section table.
        return ", byte " + std::to_string(offset) + " of " +
               std::string(prefixOf(kind)) + " section";
      case OffsetUnit::None: break;
    }
    return {};
  }

  void fail(const std::string& what) { errors_.push_back(where_ + ": " + what); }

  void checkPos(const Pos& pos, const std::string& what) {
    if (!checkable(ItemKind::SourceFile)) return;
    if (pos.file != 0 && pdb_.findSourceFile(pos.file) == nullptr)
      fail(what + " references undefined so#" + std::to_string(pos.file));
  }

  void checkExtent(const Extent& e) {
    checkPos(e.header_begin, "header begin");
    checkPos(e.header_end, "header end");
    checkPos(e.body_begin, "body begin");
    checkPos(e.body_end, "body end");
  }

  void checkParent(const std::optional<ItemRef>& parent) {
    if (parent) checkRef(*parent, "parent");
  }

  void checkRef(const ItemRef& ref, const std::string& what) {
    if (ref.id == 0 || !checkable(ref.kind)) return;
    bool found = false;
    switch (ref.kind) {
      case ItemKind::SourceFile: found = pdb_.findSourceFile(ref.id) != nullptr; break;
      case ItemKind::Routine: found = pdb_.findRoutine(ref.id) != nullptr; break;
      case ItemKind::Class: found = pdb_.findClass(ref.id) != nullptr; break;
      case ItemKind::Type: found = pdb_.findType(ref.id) != nullptr; break;
      case ItemKind::Template: found = pdb_.findTemplate(ref.id) != nullptr; break;
      case ItemKind::Namespace: found = pdb_.findNamespace(ref.id) != nullptr; break;
      case ItemKind::Macro: found = pdb_.findMacro(ref.id) != nullptr; break;
      case ItemKind::DefUse: found = pdb_.findDefUse(ref.id) != nullptr; break;
      case ItemKind::DynProf: found = pdb_.findDynProf(ref.id) != nullptr; break;
    }
    if (!found) fail(what + " references undefined " + ref.str());
  }

  const PdbFile& pdb_;
  Sections loaded_;
  std::string where_;
  std::vector<std::string> errors_;
};

}  // namespace

std::vector<std::string> validate(const PdbFile& pdb) {
  return Validator(pdb, Sections::All).run();
}

std::vector<std::string> validate(const PdbFile& pdb, Sections loaded) {
  return Validator(pdb, loaded).run();
}

}  // namespace pdt::pdb
