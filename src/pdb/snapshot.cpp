#include "pdb/snapshot.h"

#include <atomic>
#include <utility>

#include "support/mmap_buffer.h"
#include "support/trace.h"

namespace pdt::pdb {
namespace {

// Generations are process-unique and monotone; 0 never appears, so it can
// serve as "no snapshot yet" in consumers.
std::atomic<std::uint64_t> g_generation{0};

std::uint64_t nextGeneration() {
  return g_generation.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

OpenResult open(const std::string& path, Sections sections) {
  PDT_TRACE_SCOPE("pdb.open", path);
  OpenResult result;
  const bool allow_mmap = mmapMode() != MmapMode::Off;
  // Full reads touch every byte (whole-file checksum + all sections), so
  // pre-fault the mapping; masked reads stay lazy.
  auto buffer =
      support::MmapBuffer::open(path, allow_mmap, sections == Sections::All);
  if (!buffer) return result;
  result.opened = true;
  auto backing = std::make_shared<const support::MmapBuffer>(std::move(*buffer));
  const std::string_view bytes = backing->view();
  ReadResult read = readBuffer(bytes, sections);
  if (!read.ok()) {
    result.errors = std::move(read.errors);
    return result;
  }
  auto snap = std::shared_ptr<Snapshot>(new Snapshot);
  snap->pdb_ = std::move(read.pdb);
  snap->pdb_.adoptBacking(backing);
  snap->loaded_ = read.loaded;
  snap->generation_ = nextGeneration();
  snap->path_ = path;
  snap->format_ = detectFormat(bytes);
  snap->bytes_ = bytes;
  snap->buffer_ = std::move(backing);
  result.snapshot = std::move(snap);
  return result;
}

OpenResult widen(const SnapshotPtr& snapshot, Sections extra) {
  OpenResult result;
  if (snapshot == nullptr) {
    result.errors.emplace_back("null snapshot");
    return result;
  }
  result.opened = true;
  if (hasSections(snapshot->loaded(), extra)) {
    // Already covered: the existing snapshot is the answer.
    result.snapshot = snapshot;
    return result;
  }
  PDT_TRACE_SCOPE("pdb.widen", snapshot->path());
  // Parse only the sections the snapshot skipped, from the bytes it
  // retained — no file I/O. Readers assign item ids by file order no
  // matter which mask is active, so sections parsed now line up with the
  // ones parsed at open().
  const Sections missing = static_cast<Sections>(
      static_cast<std::uint16_t>(extra) &
      ~static_cast<std::uint16_t>(snapshot->loaded()));
  ReadResult read = readBuffer(snapshot->bytes_, missing);
  if (!read.ok()) {
    result.errors = std::move(read.errors);
    return result;
  }
  auto snap = std::shared_ptr<Snapshot>(new Snapshot);
  // Flat copy shares the existing backings (including the retained read
  // buffer, which the freshly-parsed sections alias too).
  snap->pdb_ = snapshot->clonePdb();
  snap->pdb_.adoptSections(std::move(read.pdb), missing);
  snap->loaded_ = snapshot->loaded() | read.loaded;
  snap->generation_ = snapshot->generation();  // same DB image, same gen
  snap->path_ = snapshot->path();
  snap->format_ = snapshot->format();
  snap->bytes_ = snapshot->bytes_;
  snap->buffer_ = snapshot->buffer_;
  result.snapshot = std::move(snap);
  return result;
}

}  // namespace pdt::pdb
