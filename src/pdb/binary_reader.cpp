#include "pdb/binary_reader.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "pdb/binary_layout.h"
#include "pdb/format.h"
#include "support/trace.h"

namespace pdt::pdb {
namespace {

using binary::kHeaderSize;
using binary::kSectionEntrySize;

/// Bounds-checked little-endian cursor. Any overrun poisons the cursor
/// (`ok()` goes false and every later read returns 0), so decode loops can
/// run to completion and report one error instead of reading wild.
class Cursor {
 public:
  Cursor(std::string_view bytes, std::size_t pos) : bytes_(bytes), pos_(pos) {}

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    // Single load (see binary::loadLaneLE): the record decode loop is
    // fixed-width-field bound, so the load must not expand into per-byte
    // shifts.
    std::uint32_t v = 0;
    std::memcpy(&v, bytes_.data() + pos_, sizeof v);
    if constexpr (std::endian::native == std::endian::big) {
      std::uint32_t swapped = 0;
      for (int b = 0; b < 4; ++b)
        swapped |= ((v >> (8 * b)) & 0xffu) << (8 * (3 - b));
      v = swapped;
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    const std::uint64_t v = binary::loadLaneLE(bytes_.data() + pos_);
    pos_ += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  bool need(std::size_t n) {
    if (!ok_ || pos_ + n > bytes_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

struct SectionEntry {
  std::uint32_t kind = 0;
  std::uint32_t item_count = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
};

class BinaryReader {
 public:
  BinaryReader(std::string_view bytes, Sections sections)
      : bytes_(bytes),
        sections_(sections),
        full_(sections == Sections::All) {}

  ReadResult run() {
    if (!checkEnvelope()) return std::move(result_);
    decodeStringTable();
    if (!result_.errors.empty()) return std::move(result_);
    for (const SectionEntry& entry : table_) {
      if (entry.kind > static_cast<std::uint32_t>(ItemKind::DynProf)) {
        error("section table names unknown item kind " +
              std::to_string(entry.kind));
        continue;
      }
      const auto kind = static_cast<ItemKind>(entry.kind);
      if (!hasSections(sections_, sectionOf(kind))) {
        ++skipped_;
        continue;
      }
      decodeSection(kind, entry);
    }
    result_.pdb.reindex();
    result_.pdb.setOffsetUnit(OffsetUnit::Byte);
    result_.loaded = sections_;
    return std::move(result_);
  }

  [[nodiscard]] std::uint64_t skippedSectionCount() const { return skipped_; }

 private:
  void error(std::string message) {
    result_.errors.push_back("binary: " + std::move(message));
  }

  /// Magic, size, checksum, header, section table. Runs before any record
  /// decode so corrupt files are rejected in one cheap pass.
  ///
  /// Integrity policy, chosen so a lazy read composes with mmap: a full
  /// read (mask == All) verifies the trailing whole-file checksum exactly
  /// as before; a masked read verifies the string-table checksum here and
  /// each requested section's checksum in decodeSection — bytes of
  /// unrequested sections are never touched, so their pages are never
  /// faulted in.
  bool checkEnvelope() {
    if (bytes_.size() < kHeaderSize + 8 ||
        bytes_.substr(0, kBinaryMagic.size()) != kBinaryMagic) {
      error("missing or malformed binary PDB magic");
      return false;
    }
    Cursor header(bytes_, kBinaryMagic.size());
    const std::uint32_t section_count = header.u32();
    const std::uint64_t total_size = header.u64();
    strtab_offset_ = header.u64();
    strtab_size_ = header.u64();
    const std::uint64_t strtab_checksum = header.u64();
    if (total_size != bytes_.size()) {
      error("size mismatch: header says " + std::to_string(total_size) +
            " bytes, file has " + std::to_string(bytes_.size()));
      return false;
    }
    if (full_) {
      const std::string_view body = bytes_.substr(0, bytes_.size() - 8);
      Cursor tail(bytes_, bytes_.size() - 8);
      const std::uint64_t stored = tail.u64();
      const std::uint64_t computed = binary::checksum64(body);
      if (stored != computed) {
        error("checksum mismatch (file corrupt or truncated)");
        return false;
      }
    }
    if (kHeaderSize + section_count * kSectionEntrySize > bytes_.size() - 8) {
      error("section table overruns file");
      return false;
    }
    if (strtab_offset_ + strtab_size_ > bytes_.size() - 8) {
      error("string table overruns file");
      return false;
    }
    if (!full_ &&
        binary::checksum64(bytes_.substr(
            static_cast<std::size_t>(strtab_offset_),
            static_cast<std::size_t>(strtab_size_))) != strtab_checksum) {
      error("string table checksum mismatch (file corrupt or truncated)");
      return false;
    }
    Cursor cur(bytes_, kHeaderSize);
    for (std::uint32_t i = 0; i < section_count; ++i) {
      SectionEntry entry;
      entry.kind = cur.u32();
      entry.item_count = cur.u32();
      entry.offset = cur.u64();
      entry.size = cur.u64();
      entry.checksum = cur.u64();
      if (entry.offset + entry.size > bytes_.size() - 8) {
        error("section " + std::to_string(i) + " overruns file");
        return false;
      }
      // Every record is at least 8 bytes (id + name index); rejecting
      // inflated counts here means item_count is safe to reserve() on.
      if (entry.item_count > entry.size / 8) {
        error("section " + std::to_string(i) + " declares " +
              std::to_string(entry.item_count) +
              " items, more than its payload can hold");
        return false;
      }
      table_.push_back(entry);
    }
    return true;
  }

  void decodeStringTable() {
    Cursor cur(bytes_, static_cast<std::size_t>(strtab_offset_));
    const std::uint32_t count = cur.u32();
    strings_.reserve(count);
    const std::size_t end = strtab_offset_ + strtab_size_;
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t len = cur.u32();
      if (!cur.ok() || cur.pos() + len > end) {
        error("string table truncated at entry " + std::to_string(i));
        return;
      }
      strings_.push_back(bytes_.substr(cur.pos(), len));
      cur = Cursor(bytes_, cur.pos() + len);
    }
  }

  /// String-table lookup as a view over the file buffer — the zero-copy
  /// contract: every string field of the result aliases `bytes_`, and the
  /// file-level entry points park the buffer in the PdbFile as a backing.
  /// Out-of-range indexes report once and yield "".
  std::string_view str(std::uint32_t id) {
    if (id >= strings_.size()) {
      if (!bad_string_reported_) {
        bad_string_reported_ = true;
        error("record references string " + std::to_string(id) +
              " outside the " + std::to_string(strings_.size()) +
              "-entry string table");
      }
      return {};
    }
    return strings_[id];
  }

  std::optional<ItemRef> optRef(Cursor& cur) {
    const std::uint8_t kind = cur.u8();
    const std::uint32_t id = cur.u32();
    if (kind == 0xff) return std::nullopt;
    if (kind > static_cast<std::uint8_t>(ItemKind::DynProf)) {
      error("record references unknown item kind " + std::to_string(kind));
      return std::nullopt;
    }
    return ItemRef{static_cast<ItemKind>(kind), id};
  }
  ItemRef ref(Cursor& cur) {
    const auto r = optRef(cur);
    return r ? *r : ItemRef{};
  }
  std::optional<std::uint32_t> optU32(Cursor& cur) {
    const std::uint8_t has = cur.u8();
    const std::uint32_t v = cur.u32();
    if (has == 0) return std::nullopt;
    return v;
  }
  Pos pos(Cursor& cur) {
    Pos p;
    p.file = cur.u32();
    p.line = cur.u32();
    p.column = cur.u32();
    return p;
  }
  Extent extent(Cursor& cur) {
    Extent e;
    e.header_begin = pos(cur);
    e.header_end = pos(cur);
    e.body_begin = pos(cur);
    e.body_end = pos(cur);
    return e;
  }

  /// Grows the destination vector once up front (item_count is bounded
  /// by the envelope check) instead of reallocating along the way.
  void reserveSection(ItemKind kind, std::uint32_t n) {
    PdbFile& pdb = result_.pdb;
    switch (kind) {
      case ItemKind::SourceFile:
        pdb.sourceFiles().reserve(pdb.sourceFiles().size() + n);
        break;
      case ItemKind::Template:
        pdb.templates().reserve(pdb.templates().size() + n);
        break;
      case ItemKind::Routine:
        pdb.routines().reserve(pdb.routines().size() + n);
        break;
      case ItemKind::Class:
        pdb.classes().reserve(pdb.classes().size() + n);
        break;
      case ItemKind::Type:
        pdb.types().reserve(pdb.types().size() + n);
        break;
      case ItemKind::Namespace:
        pdb.namespaces().reserve(pdb.namespaces().size() + n);
        break;
      case ItemKind::Macro:
        pdb.macros().reserve(pdb.macros().size() + n);
        break;
      case ItemKind::DefUse:
        pdb.defUses().reserve(pdb.defUses().size() + n);
        break;
      case ItemKind::DynProf:
        pdb.dynProfs().reserve(pdb.dynProfs().size() + n);
        break;
    }
  }

  void decodeSection(ItemKind kind, const SectionEntry& entry) {
    if (!full_ &&
        binary::checksum64(bytes_.substr(
            static_cast<std::size_t>(entry.offset),
            static_cast<std::size_t>(entry.size))) != entry.checksum) {
      error(std::string(prefixOf(kind)) +
            " section checksum mismatch (file corrupt or truncated)");
      return;
    }
    reserveSection(kind, entry.item_count);
    Cursor cur(bytes_, static_cast<std::size_t>(entry.offset));
    const std::size_t end = entry.offset + entry.size;
    for (std::uint32_t i = 0; i < entry.item_count; ++i) {
      const std::uint64_t record_offset = cur.pos();
      switch (kind) {
        case ItemKind::SourceFile: decodeSourceFile(cur, record_offset); break;
        case ItemKind::Template: decodeTemplate(cur, record_offset); break;
        case ItemKind::Routine: decodeRoutine(cur, record_offset); break;
        case ItemKind::Class: decodeClass(cur, record_offset); break;
        case ItemKind::Type: decodeType(cur, record_offset); break;
        case ItemKind::Namespace: decodeNamespace(cur, record_offset); break;
        case ItemKind::Macro: decodeMacro(cur, record_offset); break;
        case ItemKind::DefUse: decodeDefUse(cur, record_offset); break;
        case ItemKind::DynProf: decodeDynProf(cur, record_offset); break;
      }
      if (!cur.ok() || cur.pos() > end) {
        error(std::string(prefixOf(kind)) + " section truncated at item " +
              std::to_string(i));
        return;
      }
    }
    if (cur.pos() != end)
      error(std::string(prefixOf(kind)) + " section has " +
            std::to_string(end - cur.pos()) + " trailing bytes");
  }

  void decodeSourceFile(Cursor& cur, std::uint64_t off) {
    SourceFileItem f;
    f.id = cur.u32();
    f.name = str(cur.u32());
    const std::uint32_t n = cur.u32();
    for (std::uint32_t i = 0; i < n && cur.ok(); ++i)
      f.includes.push_back(cur.u32());
    f.system = cur.u8() != 0;
    f.src_offset = off;
    if (cur.ok()) result_.pdb.addSourceFile(std::move(f));
  }

  void decodeTemplate(Cursor& cur, std::uint64_t off) {
    TemplateItem t;
    t.id = cur.u32();
    t.name = str(cur.u32());
    t.location = pos(cur);
    t.parent = optRef(cur);
    t.access = str(cur.u32());
    t.kind = str(cur.u32());
    t.text = str(cur.u32());
    t.extent = extent(cur);
    t.src_offset = off;
    if (cur.ok()) result_.pdb.addTemplate(std::move(t));
  }

  void decodeRoutine(Cursor& cur, std::uint64_t off) {
    RoutineItem r;
    r.id = cur.u32();
    r.name = str(cur.u32());
    r.location = pos(cur);
    r.parent = optRef(cur);
    r.access = str(cur.u32());
    r.signature = cur.u32();
    r.linkage = str(cur.u32());
    r.storage = str(cur.u32());
    r.virtuality = str(cur.u32());
    r.kind = str(cur.u32());
    r.template_id = optU32(cur);
    const std::uint8_t flags = cur.u8();
    r.is_specialization = (flags & 0x01) != 0;
    r.is_static = (flags & 0x02) != 0;
    r.is_inline = (flags & 0x04) != 0;
    r.is_explicit = (flags & 0x08) != 0;
    r.defined = (flags & 0x10) != 0;
    const std::uint32_t ncalls = cur.u32();
    for (std::uint32_t i = 0; i < ncalls && cur.ok(); ++i) {
      RoutineItem::Call c;
      c.routine = cur.u32();
      c.is_virtual = cur.u8() != 0;
      c.position = pos(cur);
      r.calls.push_back(c);
    }
    r.extent = extent(cur);
    r.src_offset = off;
    if (cur.ok()) result_.pdb.addRoutine(std::move(r));
  }

  void decodeClass(Cursor& cur, std::uint64_t off) {
    ClassItem c;
    c.id = cur.u32();
    c.name = str(cur.u32());
    c.location = pos(cur);
    c.parent = optRef(cur);
    c.access = str(cur.u32());
    c.kind = str(cur.u32());
    c.template_id = optU32(cur);
    c.is_specialization = cur.u8() != 0;
    const std::uint32_t nbases = cur.u32();
    for (std::uint32_t i = 0; i < nbases && cur.ok(); ++i) {
      ClassItem::Base b;
      b.cls = cur.u32();
      b.access = str(cur.u32());
      b.is_virtual = cur.u8() != 0;
      c.bases.push_back(b);
    }
    const std::uint32_t nfriends = cur.u32();
    for (std::uint32_t i = 0; i < nfriends && cur.ok(); ++i) {
      ClassItem::Friend f;
      f.is_class = cur.u8() != 0;
      f.name = str(cur.u32());
      f.ref = optRef(cur);
      c.friends.push_back(f);
    }
    const std::uint32_t nfuncs = cur.u32();
    for (std::uint32_t i = 0; i < nfuncs && cur.ok(); ++i) {
      ClassItem::MemberFunc mf;
      mf.routine = cur.u32();
      mf.location = pos(cur);
      c.funcs.push_back(mf);
    }
    const std::uint32_t nmembers = cur.u32();
    for (std::uint32_t i = 0; i < nmembers && cur.ok(); ++i) {
      ClassItem::Member m;
      m.name = str(cur.u32());
      m.location = pos(cur);
      m.access = str(cur.u32());
      m.kind = str(cur.u32());
      m.type = ref(cur);
      c.members.push_back(m);
    }
    c.extent = extent(cur);
    c.src_offset = off;
    if (cur.ok()) result_.pdb.addClass(std::move(c));
  }

  void decodeType(Cursor& cur, std::uint64_t off) {
    TypeItem t;
    t.id = cur.u32();
    t.name = str(cur.u32());
    t.kind = str(cur.u32());
    t.ikind = str(cur.u32());
    t.ref = optRef(cur);
    const std::uint32_t nquals = cur.u32();
    for (std::uint32_t i = 0; i < nquals && cur.ok(); ++i)
      t.qualifiers.push_back(str(cur.u32()));
    t.return_type = optRef(cur);
    const std::uint32_t nparams = cur.u32();
    for (std::uint32_t i = 0; i < nparams && cur.ok(); ++i)
      t.params.push_back(ref(cur));
    const std::uint8_t flags = cur.u8();
    t.has_ellipsis = (flags & 0x01) != 0;
    t.has_exception_spec = (flags & 0x02) != 0;
    const std::uint32_t nexcep = cur.u32();
    for (std::uint32_t i = 0; i < nexcep && cur.ok(); ++i)
      t.exception_specs.push_back(ref(cur));
    t.array_size = cur.i64();
    const std::uint32_t nenum = cur.u32();
    for (std::uint32_t i = 0; i < nenum && cur.ok(); ++i) {
      const std::string_view name = str(cur.u32());
      const std::int64_t value = cur.i64();
      t.enumerators.emplace_back(name, value);
    }
    t.src_offset = off;
    if (cur.ok()) result_.pdb.addType(std::move(t));
  }

  void decodeNamespace(Cursor& cur, std::uint64_t off) {
    NamespaceItem n;
    n.id = cur.u32();
    n.name = str(cur.u32());
    n.location = pos(cur);
    const std::uint32_t nmem = cur.u32();
    for (std::uint32_t i = 0; i < nmem && cur.ok(); ++i)
      n.members.push_back(ref(cur));
    n.alias = str(cur.u32());
    n.src_offset = off;
    if (cur.ok()) result_.pdb.addNamespace(std::move(n));
  }

  void decodeMacro(Cursor& cur, std::uint64_t off) {
    MacroItem m;
    m.id = cur.u32();
    m.name = str(cur.u32());
    m.location = pos(cur);
    m.kind = str(cur.u32());
    m.text = str(cur.u32());
    m.src_offset = off;
    if (cur.ok()) result_.pdb.addMacro(std::move(m));
  }

  void decodeDefUse(Cursor& cur, std::uint64_t off) {
    DefUseItem d;
    d.id = cur.u32();
    d.routine = cur.u32();
    const std::uint32_t nevents = cur.u32();
    for (std::uint32_t i = 0; i < nevents && cur.ok(); ++i) {
      DefUseItem::Event e;
      const std::uint8_t op = cur.u8();
      if (op > static_cast<std::uint8_t>(DuOp::Marker)) {
        error("du event names unknown op " + std::to_string(op));
        return;
      }
      e.op = static_cast<DuOp>(op);
      e.flags = cur.u8();
      e.name = str(cur.u32());
      e.pos = pos(cur);
      d.events.push_back(e);
    }
    d.src_offset = off;
    if (cur.ok()) result_.pdb.addDefUse(std::move(d));
  }

  void decodeDynProf(Cursor& cur, std::uint64_t off) {
    DynProfItem p;
    p.id = cur.u32();
    p.name = str(cur.u32());
    p.routine = cur.u32();
    p.calls = cur.u64();
    p.child_calls = cur.u64();
    p.inclusive_ns = cur.u64();
    p.exclusive_ns = cur.u64();
    p.threads = cur.u32();
    p.contexts = cur.u32();
    p.src_offset = off;
    if (cur.ok()) result_.pdb.addDynProf(std::move(p));
  }

  std::string_view bytes_;
  Sections sections_ = Sections::All;
  bool full_ = true;  // mask == All: verify the trailing whole-file checksum
  std::uint64_t strtab_offset_ = 0;
  std::uint64_t strtab_size_ = 0;
  std::vector<SectionEntry> table_;
  std::vector<std::string_view> strings_;   // views into bytes_
  bool bad_string_reported_ = false;
  std::uint64_t skipped_ = 0;
  ReadResult result_;
};

}  // namespace

bool isBinaryPdb(std::string_view bytes) {
  return bytes.size() >= kBinaryMagic.size() &&
         bytes.substr(0, kBinaryMagic.size()) == kBinaryMagic;
}

ReadResult readBinaryFromBuffer(std::string_view bytes, Sections sections) {
  BinaryReader reader(bytes, sections);
  ReadResult result = reader.run();
  if (result.ok()) {
    trace::count(trace::Counter::PdbFilesRead);
    trace::count(trace::Counter::PdbItemsRead, result.pdb.itemCount());
    trace::countKey("pdb.read.by_format", "binary");
    if (const auto skipped = reader.skippedSectionCount(); skipped > 0)
      trace::count(trace::Counter::PdbSectionsSkipped, skipped);
  }
  return result;
}

}  // namespace pdt::pdb
