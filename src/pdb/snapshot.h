// Immutable database snapshots: the shared ownership model every reader
// of a PDB on disk goes through (docs/PDBD.md §"Snapshots").
//
// pdb::open() loads a database (any storage format, any section mask)
// and publishes it as a Snapshot: the typed PdbFile, the mmap/heap
// backing its string_views alias, the mask of sections actually
// materialized, and a process-unique generation number. A Snapshot is
// deeply immutable and handed around as shared_ptr<const Snapshot>, so
// any number of concurrent readers — tool pipelines, pdbcheck worker
// threads, pdbd client connections — can share one loaded database with
// no copies and no locks.
//
// Lazily-skipped sections can be re-opened later with widen(): the
// retained read buffer is re-parsed for exactly the missing sections and
// combined with the already-materialized ones into a new Snapshot of the
// same generation. Nothing loaded is re-read, re-parsed, or re-interned —
// item records are flat-copied views over the same shared backing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pdb/format.h"
#include "pdb/pdb.h"

namespace pdt::pdb {

class Snapshot;
/// How snapshots travel: immutable and shared. Copying the pointer is the
/// only "copy" concurrent readers ever make.
using SnapshotPtr = std::shared_ptr<const Snapshot>;

struct OpenResult;

/// One loaded database generation. Immutable after open()/widen() returns
/// it; safe to read from any number of threads concurrently.
class Snapshot {
 public:
  /// The typed database. Items outside loaded() were skipped and their
  /// vectors are empty (widen() can materialize them later).
  [[nodiscard]] const PdbFile& pdb() const { return pdb_; }

  /// Sections actually materialized.
  [[nodiscard]] Sections loaded() const { return loaded_; }

  /// Process-unique generation number, assigned at open() and preserved
  /// by widen(). pdbd stamps every response with the generation of the
  /// snapshot that answered it.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] Format format() const { return format_; }

  /// Size in bytes of the retained on-disk image.
  [[nodiscard]] std::size_t byteSize() const { return bytes_.size(); }

  /// Mutable flat copy for the writers' side of the world (tauprof
  /// attaching a dp section, pdbmerge folding). Shares the zero-copy
  /// string backings with the snapshot; item records are copied.
  [[nodiscard]] PdbFile clonePdb() const { return pdb_; }

 private:
  Snapshot() = default;
  friend OpenResult open(const std::string& path, Sections sections);
  friend OpenResult widen(const SnapshotPtr& snapshot, Sections extra);

  PdbFile pdb_;
  Sections loaded_ = Sections::All;
  std::uint64_t generation_ = 0;
  std::string path_;
  Format format_ = Format::Ascii;

  // The raw on-disk image, retained so widen() can materialize skipped
  // sections without touching the filesystem again. The buffer is also
  // adopted by pdb_, so views stay valid for the snapshot's lifetime.
  std::shared_ptr<const void> buffer_;
  std::string_view bytes_;
};

/// What open()/widen() hand back. `snapshot` is null on any failure;
/// `opened` distinguishes "file not found/readable" (false) from "file
/// read but malformed" (true, with the reader's errors).
struct OpenResult {
  SnapshotPtr snapshot;
  std::vector<std::string> errors;  // reader diagnostics ("line N: ...")
  bool opened = false;

  [[nodiscard]] bool ok() const { return snapshot != nullptr; }
};

/// Opens a database file as an immutable snapshot. Auto-detects the
/// storage format; acquires bytes per the process-wide mmap mode
/// (--mmap=on|off|auto); materializes at most `sections`. This is the
/// single file-read entry point every tool and the DUCTAPE loader use.
[[nodiscard]] OpenResult open(const std::string& path,
                              Sections sections = Sections::All);

/// Re-opens lazily-skipped sections into the same snapshot generation.
/// Returns `snapshot` itself when `extra` is already covered; otherwise a
/// new Snapshot whose mask is loaded()|extra. Only the missing sections
/// are parsed (from the retained buffer — no file I/O); everything
/// already loaded is shared, not copied.
[[nodiscard]] OpenResult widen(const SnapshotPtr& snapshot, Sections extra);

}  // namespace pdt::pdb
