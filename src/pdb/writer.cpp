#include "pdb/writer.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "support/text.h"
#include "support/trace.h"

namespace pdt::pdb {
namespace {

void writePos(std::ostream& os, const Pos& pos) {
  if (!pos.valid()) {
    os << "NULL 0 0";
    return;
  }
  os << "so#" << pos.file << ' ' << pos.line << ' ' << pos.column;
}

void writeExtent(std::ostream& os, std::string_view key, const Extent& e) {
  os << key << ' ';
  writePos(os, e.header_begin);
  os << ' ';
  writePos(os, e.header_end);
  os << ' ';
  writePos(os, e.body_begin);
  os << ' ';
  writePos(os, e.body_end);
  os << '\n';
}

void writeLoc(std::ostream& os, std::string_view key, const Pos& pos) {
  os << key << ' ';
  writePos(os, pos);
  os << '\n';
}

}  // namespace

void write(const PdbFile& pdb, std::ostream& os) {
  trace::count(trace::Counter::PdbFilesWritten);
  trace::count(trace::Counter::PdbItemsWritten, pdb.itemCount());
  os << "<PDB " << PdbFile::kVersion << ">\n\n";

  for (const SourceFileItem& f : pdb.sourceFiles()) {
    os << "so#" << f.id << ' ' << f.name << '\n';
    if (f.system) os << "ssys yes\n";
    for (const std::uint32_t inc : f.includes) os << "sinc so#" << inc << '\n';
    os << '\n';
  }

  for (const TemplateItem& t : pdb.templates()) {
    os << "te#" << t.id << ' ' << t.name << '\n';
    if (t.location.valid()) writeLoc(os, "tloc", t.location);
    if (t.parent) os << (t.parent->kind == ItemKind::Class ? "tclass " : "tnspace ")
                     << t.parent->str() << '\n';
    if (t.access != "NA") os << "tacs " << t.access << '\n';
    os << "tkind " << t.kind << '\n';
    if (!t.text.empty()) os << "ttext " << escapePdbString(t.text) << '\n';
    writeExtent(os, "tpos", t.extent);
    os << '\n';
  }

  for (const RoutineItem& r : pdb.routines()) {
    os << "ro#" << r.id << ' ' << r.name << '\n';
    if (r.location.valid()) writeLoc(os, "rloc", r.location);
    if (r.parent) os << (r.parent->kind == ItemKind::Class ? "rclass " : "rnspace ")
                     << r.parent->str() << '\n';
    os << "racs " << r.access << '\n';
    if (r.signature != 0) os << "rsig ty#" << r.signature << '\n';
    os << "rlink " << r.linkage << '\n';
    os << "rstore " << r.storage << '\n';
    os << "rvirt " << r.virtuality << '\n';
    if (r.kind != "routine") os << "rkind " << r.kind << '\n';
    if (r.is_static) os << "rstatic yes\n";
    if (r.is_inline) os << "rinline yes\n";
    if (r.is_explicit) os << "rexplicit yes\n";
    if (r.template_id) os << "rtempl te#" << *r.template_id << '\n';
    if (r.is_specialization) os << "rspecl yes\n";
    if (r.defined) os << "rdef yes\n";
    for (const RoutineItem::Call& call : r.calls) {
      os << "rcall ro#" << call.routine << ' '
         << (call.is_virtual ? "virt" : "no") << ' ';
      writePos(os, call.position);
      os << '\n';
    }
    writeExtent(os, "rpos", r.extent);
    os << '\n';
  }

  for (const ClassItem& c : pdb.classes()) {
    os << "cl#" << c.id << ' ' << c.name << '\n';
    if (c.location.valid()) writeLoc(os, "cloc", c.location);
    if (c.parent) os << (c.parent->kind == ItemKind::Class ? "cclass " : "cnspace ")
                     << c.parent->str() << '\n';
    if (c.access != "NA") os << "cacs " << c.access << '\n';
    os << "ckind " << c.kind << '\n';
    if (c.template_id) os << "ctempl te#" << *c.template_id << '\n';
    if (c.is_specialization) os << "cspecl yes\n";
    for (const ClassItem::Base& b : c.bases) {
      os << "cbase " << b.access << ' ' << (b.is_virtual ? "virt" : "no")
         << " cl#" << b.cls << '\n';
    }
    for (const ClassItem::Friend& f : c.friends) {
      os << "cfriend " << (f.is_class ? "class" : "func") << ' ' << f.name;
      if (f.ref) os << ' ' << f.ref->str();
      os << '\n';
    }
    for (const ClassItem::MemberFunc& mf : c.funcs) {
      os << "cfunc ro#" << mf.routine << ' ';
      writePos(os, mf.location);
      os << '\n';
    }
    for (const ClassItem::Member& m : c.members) {
      os << "cmem " << m.name << '\n';
      writeLoc(os, "cmloc", m.location);
      os << "cmacs " << m.access << '\n';
      os << "cmkind " << m.kind << '\n';
      os << "cmtype " << m.type.str() << '\n';
    }
    writeExtent(os, "cpos", c.extent);
    os << '\n';
  }

  for (const TypeItem& t : pdb.types()) {
    os << "ty#" << t.id << ' ' << t.name << '\n';
    os << "ykind " << t.kind << '\n';
    if (!t.ikind.empty()) os << "yikind " << t.ikind << '\n';
    if (t.ref) {
      if (t.kind == "ptr") os << "yptr " << t.ref->str() << '\n';
      else if (t.kind == "ref") os << "yref " << t.ref->str() << '\n';
      else if (t.kind == "tref") os << "ytref " << t.ref->str() << '\n';
      else if (t.kind == "array") os << "yelem " << t.ref->str() << '\n';
      else os << "yref " << t.ref->str() << '\n';
    }
    if (t.kind == "array" && t.array_size >= 0)
      os << "ysize " << t.array_size << '\n';
    for (const std::string_view q : t.qualifiers) os << "yqual " << q << '\n';
    if (t.return_type) os << "yrett " << t.return_type->str() << '\n';
    for (const ItemRef& p : t.params) os << "yargt " << p.str() << '\n';
    if (t.has_ellipsis) os << "yellip yes\n";
    if (t.has_exception_spec) {
      for (const ItemRef& e : t.exception_specs)
        os << "yexcep " << e.str() << '\n';
      if (t.exception_specs.empty()) os << "yexcep none\n";
    }
    for (const auto& [name, value] : t.enumerators)
      os << "yenum " << name << ' ' << value << '\n';
    os << '\n';
  }

  for (const NamespaceItem& n : pdb.namespaces()) {
    os << "na#" << n.id << ' ' << n.name << '\n';
    if (n.location.valid()) writeLoc(os, "nloc", n.location);
    if (!n.alias.empty()) os << "nalias " << n.alias << '\n';
    for (const ItemRef& m : n.members) os << "nmem " << m.str() << '\n';
    os << '\n';
  }

  for (const MacroItem& m : pdb.macros()) {
    os << "ma#" << m.id << ' ' << m.name << '\n';
    if (m.location.valid()) writeLoc(os, "mloc", m.location);
    os << "mkind " << m.kind << '\n';
    if (!m.text.empty()) os << "mtext " << escapePdbString(m.text) << '\n';
    os << '\n';
  }

  for (const DefUseItem& d : pdb.defUses()) {
    os << "du#" << d.id << " ro#" << d.routine << '\n';
    for (const DefUseItem::Event& e : d.events) {
      switch (e.op) {
        case DuOp::Def: os << "ddef " << du::flagsText(e.flags); break;
        case DuOp::Use: os << "duse " << du::flagsText(e.flags); break;
        case DuOp::Marker: os << "dmark"; break;
      }
      os << ' ' << e.name << ' ';
      writePos(os, e.pos);
      os << '\n';
    }
    os << '\n';
  }

  for (const DynProfItem& p : pdb.dynProfs()) {
    os << "dp#" << p.id << ' ' << p.name << '\n';
    if (p.routine != 0) os << "plink ro#" << p.routine << '\n';
    os << "pdata " << p.calls << ' ' << p.child_calls << ' ' << p.inclusive_ns
       << ' ' << p.exclusive_ns << ' ' << p.threads << ' ' << p.contexts
       << '\n';
    os << '\n';
  }
}

std::string writeToString(const PdbFile& pdb) {
  std::ostringstream ss;
  write(pdb, ss);
  return std::move(ss).str();
}

bool writeToFile(const PdbFile& pdb, const std::string& path) {
  PDT_TRACE_SCOPE("pdb.write", path);
  std::ofstream out(path);
  if (!out) return false;
  write(pdb, out);
  return static_cast<bool>(out);
}

}  // namespace pdt::pdb
