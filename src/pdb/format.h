// Pluggable PDB storage formats.
//
// The ASCII grammar of docs/PDB_FORMAT.md stays the canonical interchange
// form (what the paper's pdbconv calls "a standardized form"); this seam
// lets tools store and load the same database in other representations —
// today the compact binary v2 — without the DUCTAPE API or any consumer
// caring which bytes are on disk. Readers auto-detect the format from the
// leading magic bytes; writers are chosen explicitly (`--format`).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "pdb/pdb.h"
#include "pdb/reader.h"

namespace pdt::pdb {

enum class Format : std::uint8_t {
  Ascii,   // docs/PDB_FORMAT.md §grammar — canonical interchange
  Binary,  // docs/PDB_FORMAT.md §binary-v2 — section-indexed, checksummed
};

/// Leading magic of a binary v2 database. The high first byte guarantees
/// no ASCII database (which starts with "<PDB") can collide.
inline constexpr std::string_view kBinaryMagic{"\x89PDB2\r\n\x1a", 8};

/// "ascii" / "binary".
[[nodiscard]] std::string_view formatName(Format format);

/// Accepts "ascii", "bin", "binary"; nullopt otherwise.
[[nodiscard]] std::optional<Format> formatFromName(std::string_view name);

/// Sniffs serialized bytes: binary magic wins, anything else is ASCII
/// (whose own reader rejects malformed headers).
[[nodiscard]] Format detectFormat(std::string_view bytes);

/// Deserializes one storage format. `sections` is the lazy-read mask: the
/// reader materializes at most those sections (the binary reader skips
/// unrequested sections in O(1) via its section table; the ASCII reader
/// skips their attribute decoding). `ReadResult::loaded` records what was
/// actually materialized.
class FormatReader {
 public:
  virtual ~FormatReader() = default;
  [[nodiscard]] virtual Format format() const = 0;
  [[nodiscard]] virtual ReadResult readBuffer(std::string_view bytes,
                                              Sections sections) const = 0;
};

/// Serializes to one storage format. Output is deterministic: the same
/// PdbFile always produces the same bytes.
class FormatWriter {
 public:
  virtual ~FormatWriter() = default;
  [[nodiscard]] virtual Format format() const = 0;
  [[nodiscard]] virtual std::string writeString(const PdbFile& pdb) const = 0;
};

/// Registry: one stateless singleton per format.
[[nodiscard]] const FormatReader& readerFor(Format format);
[[nodiscard]] const FormatWriter& writerFor(Format format);

/// Auto-detecting read of serialized bytes. Zero-copy: the result's string
/// fields alias `bytes`, which must outlive the database (or be adopted via
/// PdbFile::adoptBacking). The file-level pdb::open (snapshot.h) handles
/// this.
[[nodiscard]] ReadResult readBuffer(std::string_view bytes,
                                    Sections sections = Sections::All);

/// How pdb::open acquires file bytes (--mmap=on|off|auto). Auto (default)
/// memory-maps where the platform supports it; On insists on mmap but
/// still falls back to a buffered read when mapping fails (torn file,
/// exotic filesystem); Off always reads into an owned buffer.
enum class MmapMode : std::uint8_t { Auto, On, Off };

/// Process-wide mmap policy for pdb::open; tools set it from --mmap.
void setMmapMode(MmapMode mode);
[[nodiscard]] MmapMode mmapMode();

/// Accepts "on", "off", "auto"; nullopt otherwise.
[[nodiscard]] std::optional<MmapMode> mmapModeFromName(std::string_view name);

/// Uniform `--mmap=MODE` command-line handling for every tool that reads
/// a database. Returns false when `arg` is not an --mmap flag (caller
/// keeps parsing); returns true after setting the process-wide mode, or
/// true with `error` filled for a malformed mode name.
bool parseMmapFlag(std::string_view arg, std::string& error);

/// Serializes in the requested format.
[[nodiscard]] std::string writeString(const PdbFile& pdb, Format format);

/// Writes to `path` in the requested format; false on I/O failure.
bool writeFile(const PdbFile& pdb, const std::string& path, Format format);

}  // namespace pdt::pdb
