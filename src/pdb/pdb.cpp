#include "pdb/pdb.h"

namespace pdt::pdb {

std::string_view prefixOf(ItemKind kind) {
  switch (kind) {
    case ItemKind::SourceFile: return "so";
    case ItemKind::Routine: return "ro";
    case ItemKind::Class: return "cl";
    case ItemKind::Type: return "ty";
    case ItemKind::Template: return "te";
    case ItemKind::Namespace: return "na";
    case ItemKind::Macro: return "ma";
    case ItemKind::DefUse: return "du";
    case ItemKind::DynProf: return "dp";
  }
  return "??";
}

std::optional<ItemKind> kindFromPrefix(std::string_view prefix) {
  if (prefix == "so") return ItemKind::SourceFile;
  if (prefix == "ro") return ItemKind::Routine;
  if (prefix == "cl") return ItemKind::Class;
  if (prefix == "ty") return ItemKind::Type;
  if (prefix == "te") return ItemKind::Template;
  if (prefix == "na") return ItemKind::Namespace;
  if (prefix == "ma") return ItemKind::Macro;
  if (prefix == "du") return ItemKind::DefUse;
  if (prefix == "dp") return ItemKind::DynProf;
  return std::nullopt;
}

namespace du {

namespace {
// One mnemonic letter per flag bit, in bit order.
constexpr std::string_view kFlagLetters = "PRMNUAXD";
}  // namespace

std::string flagsText(std::uint8_t flags) {
  if (flags == 0) return "-";
  std::string text;
  for (std::size_t bit = 0; bit < kFlagLetters.size(); ++bit)
    if ((flags & (1u << bit)) != 0) text.push_back(kFlagLetters[bit]);
  return text;
}

std::optional<std::uint8_t> flagsFromText(std::string_view text) {
  if (text == "-") return 0;
  if (text.empty()) return std::nullopt;
  std::uint8_t flags = 0;
  for (const char c : text) {
    const auto bit = kFlagLetters.find(c);
    if (bit == std::string_view::npos) return std::nullopt;
    const auto mask = static_cast<std::uint8_t>(1u << bit);
    if ((flags & mask) != 0) return std::nullopt;  // duplicate letter
    flags |= mask;
  }
  return flags;
}

}  // namespace du

std::string ItemRef::str() const {
  return std::string(prefixOf(kind)) + "#" + std::to_string(id);
}

template <typename T>
std::uint32_t PdbFile::add(std::vector<T>& vec,
                           std::unordered_map<std::uint32_t, std::size_t>& index,
                           T item, std::uint32_t& next_id) {
  if (item.id == 0) item.id = next_id;
  if (item.id >= next_id) next_id = item.id + 1;
  index[item.id] = vec.size();
  vec.push_back(std::move(item));
  return vec.back().id;
}

std::uint32_t PdbFile::addSourceFile(SourceFileItem item) {
  return add(files_, file_index_, std::move(item), next_file_id_);
}
std::uint32_t PdbFile::addRoutine(RoutineItem item) {
  return add(routines_, routine_index_, std::move(item), next_routine_id_);
}
std::uint32_t PdbFile::addClass(ClassItem item) {
  return add(classes_, class_index_, std::move(item), next_class_id_);
}
std::uint32_t PdbFile::addType(TypeItem item) {
  return add(types_, type_index_, std::move(item), next_type_id_);
}
std::uint32_t PdbFile::addTemplate(TemplateItem item) {
  return add(templates_, template_index_, std::move(item), next_template_id_);
}
std::uint32_t PdbFile::addNamespace(NamespaceItem item) {
  return add(namespaces_, namespace_index_, std::move(item), next_namespace_id_);
}
std::uint32_t PdbFile::addMacro(MacroItem item) {
  return add(macros_, macro_index_, std::move(item), next_macro_id_);
}
std::uint32_t PdbFile::addDefUse(DefUseItem item) {
  return add(def_uses_, def_use_index_, std::move(item), next_def_use_id_);
}
std::uint32_t PdbFile::addDynProf(DynProfItem item) {
  return add(dyn_profs_, dyn_prof_index_, std::move(item), next_dyn_prof_id_);
}

namespace {
template <typename T>
const T* findIn(const std::vector<T>& vec,
                const std::unordered_map<std::uint32_t, std::size_t>& index,
                std::uint32_t id) {
  const auto it = index.find(id);
  if (it == index.end() || it->second >= vec.size()) return nullptr;
  return &vec[it->second];
}
}  // namespace

const SourceFileItem* PdbFile::findSourceFile(std::uint32_t id) const {
  return findIn(files_, file_index_, id);
}
const RoutineItem* PdbFile::findRoutine(std::uint32_t id) const {
  return findIn(routines_, routine_index_, id);
}
const ClassItem* PdbFile::findClass(std::uint32_t id) const {
  return findIn(classes_, class_index_, id);
}
const TypeItem* PdbFile::findType(std::uint32_t id) const {
  return findIn(types_, type_index_, id);
}
const TemplateItem* PdbFile::findTemplate(std::uint32_t id) const {
  return findIn(templates_, template_index_, id);
}
const NamespaceItem* PdbFile::findNamespace(std::uint32_t id) const {
  return findIn(namespaces_, namespace_index_, id);
}
const MacroItem* PdbFile::findMacro(std::uint32_t id) const {
  return findIn(macros_, macro_index_, id);
}
const DefUseItem* PdbFile::findDefUse(std::uint32_t id) const {
  return findIn(def_uses_, def_use_index_, id);
}
const DynProfItem* PdbFile::findDynProf(std::uint32_t id) const {
  return findIn(dyn_profs_, dyn_prof_index_, id);
}

std::size_t PdbFile::itemCount() const {
  return files_.size() + routines_.size() + classes_.size() + types_.size() +
         templates_.size() + namespaces_.size() + macros_.size() +
         def_uses_.size() + dyn_profs_.size();
}

void PdbFile::reindex() {
  const auto rebuild = [](const auto& vec, auto& index, std::uint32_t& next) {
    index.clear();
    next = 1;
    for (std::size_t i = 0; i < vec.size(); ++i) {
      index[vec[i].id] = i;
      if (vec[i].id >= next) next = vec[i].id + 1;
    }
  };
  rebuild(files_, file_index_, next_file_id_);
  rebuild(routines_, routine_index_, next_routine_id_);
  rebuild(classes_, class_index_, next_class_id_);
  rebuild(types_, type_index_, next_type_id_);
  rebuild(templates_, template_index_, next_template_id_);
  rebuild(namespaces_, namespace_index_, next_namespace_id_);
  rebuild(macros_, macro_index_, next_macro_id_);
  rebuild(def_uses_, def_use_index_, next_def_use_id_);
  rebuild(dyn_profs_, dyn_prof_index_, next_dyn_prof_id_);
}

void PdbFile::adoptSections(PdbFile&& other, Sections which) {
  const auto wants = [which](Sections s) { return hasSections(which, s); };
  if (wants(Sections::SourceFiles)) files_ = std::move(other.files_);
  if (wants(Sections::Routines)) routines_ = std::move(other.routines_);
  if (wants(Sections::Classes)) classes_ = std::move(other.classes_);
  if (wants(Sections::Types)) types_ = std::move(other.types_);
  if (wants(Sections::Templates)) templates_ = std::move(other.templates_);
  if (wants(Sections::Namespaces)) namespaces_ = std::move(other.namespaces_);
  if (wants(Sections::Macros)) macros_ = std::move(other.macros_);
  if (wants(Sections::DefUses)) def_uses_ = std::move(other.def_uses_);
  if (wants(Sections::DynProfs)) dyn_profs_ = std::move(other.dyn_profs_);
  adoptBackingsOf(other);
  reindex();
}

}  // namespace pdt::pdb
