// IL Analyzer: walks the IL tree produced by the frontend and emits a
// program database (paper §3.1).
//
// Mirrors the paper's design: separate traversals for source files,
// templates, routines, classes, namespaces, and macros; constructor and
// destructor calls are recovered from object lifetimes; and the template
// corresponding to an instantiation is recovered by scanning a pre-built
// template list for matching source locations — with the paper's proposed
// alternative (template IDs carried in the IL) available as an option.
#pragma once

#include <unordered_map>

#include "ast/context.h"
#include "frontend/frontend.h"
#include "pdb/pdb.h"
#include "support/source_manager.h"

namespace pdt::ilanalyzer {

struct AnalyzerOptions {
  /// false (default): recover rtempl/ctempl by scanning the template list
  /// for location matches — the paper's method, which cannot attribute
  /// specializations. true: use the IL's direct template links (the EDG
  /// modification the paper proposes in §3.1).
  bool use_direct_template_links = false;
  /// Emit te items for templates even when nothing instantiates them
  /// (the PDT extension SILOON asks for in §4.2).
  bool emit_uninstantiated_templates = true;
};

class IlAnalyzer {
 public:
  IlAnalyzer(const frontend::CompileResult& result, const SourceManager& sm,
             AnalyzerOptions options = {});

  /// Runs all traversals and returns the populated database.
  pdb::PdbFile analyze();

 private:
  void collectFiles();
  void collectNamespaces(const ast::DeclContext* ctx);
  void collectTemplates(const ast::DeclContext* ctx);
  void collectClasses(const ast::DeclContext* ctx);
  void collectEnums(const ast::DeclContext* ctx);
  void collectRoutines(const ast::DeclContext* ctx);
  void emitTemplates();
  void emitClasses();
  void emitRoutines();
  void emitNamespaces();
  void emitMacros();
  void emitDefUse();

  [[nodiscard]] bool isPattern(const ast::Decl* d) const;

  pdb::Pos pos(SourceLocation loc) const;
  pdb::Extent extent(const ast::Decl* d) const;
  pdb::ItemRef typeRef(const ast::Type* type);
  std::uint32_t typeId(const ast::Type* type);
  std::optional<pdb::ItemRef> parentRef(const ast::Decl* d) const;

  /// rtempl/ctempl recovery (see AnalyzerOptions).
  std::optional<std::uint32_t> templateOrigin(const ast::TemplateDecl* direct,
                                              SourceLocation inst_loc) const;

  void collectCalls(const ast::FunctionDecl* fn, pdb::RoutineItem& item);
  void collectDefUse(const ast::FunctionDecl* fn, pdb::DefUseItem& item);

  const frontend::CompileResult& result_;
  const SourceManager& sm_;
  AnalyzerOptions options_;
  pdb::PdbFile out_;

  std::unordered_map<FileId, std::uint32_t> file_ids_;
  std::unordered_map<const ast::Decl*, std::uint32_t> routine_ids_;
  std::unordered_map<const ast::Decl*, std::uint32_t> class_ids_;
  std::unordered_map<const ast::Decl*, std::uint32_t> template_ids_;
  std::unordered_map<const ast::Decl*, std::uint32_t> namespace_ids_;
  std::unordered_map<const ast::Type*, std::uint32_t> type_ids_;
  /// The paper's "list of templates created in advance": location -> te id.
  std::unordered_map<SourceLocation, std::uint32_t> template_locations_;
};

/// Convenience: compile result -> PDB in one call.
[[nodiscard]] pdb::PdbFile analyze(const frontend::CompileResult& result,
                                   const SourceManager& sm,
                                   AnalyzerOptions options = {});

}  // namespace pdt::ilanalyzer
