#include "ilanalyzer/analyzer.h"

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "ast/walk.h"
#include "support/trace.h"

namespace pdt::ilanalyzer {

using namespace ast;

namespace {

/// Snapshots a decl -> id map ordered by id. The emit passes must not
/// iterate the unordered_map directly: its order depends on pointer
/// hashes (i.e. heap addresses), and emission creates referenced type
/// items on demand, so hash-order iteration makes the PDB output vary
/// with allocator state — in particular between the main thread and the
/// worker threads of the parallel driver. Ids were assigned by the
/// deterministic collect* AST traversals, so id order is stable.
template <typename K>
std::vector<std::pair<K, std::uint32_t>> byId(
    const std::unordered_map<K, std::uint32_t>& map) {
  std::vector<std::pair<K, std::uint32_t>> items(map.begin(), map.end());
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return items;
}

}  // namespace

IlAnalyzer::IlAnalyzer(const frontend::CompileResult& result,
                       const SourceManager& sm, AnalyzerOptions options)
    : result_(result), sm_(sm), options_(options) {}

pdb::PdbFile analyze(const frontend::CompileResult& result,
                     const SourceManager& sm, AnalyzerOptions options) {
  PDT_TRACE_SCOPE("il.analyze", sm.name(result.main_file));
  pdb::PdbFile out = IlAnalyzer(result, sm, options).analyze();
  trace::count(trace::Counter::IlItems, out.itemCount());
  return out;
}

pdb::PdbFile IlAnalyzer::analyze() {
  const TranslationUnitDecl* tu = result_.ast->translationUnit();
  // Separate traversals, as in the paper: ids are assigned kind by kind so
  // each item kind can reference the others.
  collectFiles();
  collectNamespaces(tu);
  collectTemplates(tu);  // the template list built "in advance"
  collectClasses(tu);
  collectEnums(tu);
  collectRoutines(tu);
  emitTemplates();
  emitClasses();
  emitRoutines();
  emitNamespaces();
  emitMacros();
  out_.reindex();
  return std::move(out_);
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

bool IlAnalyzer::isPattern(const Decl* d) const {
  if (const auto* cls = d->as<ClassDecl>()) {
    return cls->describing_template != nullptr && cls->instantiated_from == nullptr;
  }
  if (const auto* fn = d->as<FunctionDecl>()) {
    if (fn->describing_template != nullptr && fn->instantiated_from == nullptr &&
        !fn->is_specialization)
      return true;
    // Members of a pattern class are patterns too.
    if (const ClassDecl* owner = fn->memberOf()) return isPattern(owner);
  }
  if (const auto* var = d->as<VarDecl>()) {
    if (var->parent() != nullptr) {
      if (const auto* cls = var->parent()->asDecl()->as<ClassDecl>())
        return isPattern(cls);
    }
  }
  return false;
}

pdb::Pos IlAnalyzer::pos(SourceLocation loc) const {
  if (!loc.valid()) return {};
  const auto it = file_ids_.find(loc.file);
  if (it == file_ids_.end()) return {};
  return {it->second, loc.line, loc.column};
}

pdb::Extent IlAnalyzer::extent(const Decl* d) const {
  pdb::Extent e;
  e.header_begin = pos(d->headerExtent().begin);
  e.header_end = pos(d->headerExtent().end);
  e.body_begin = pos(d->bodyExtent().begin);
  e.body_end = pos(d->bodyExtent().end);
  return e;
}

std::optional<pdb::ItemRef> IlAnalyzer::parentRef(const Decl* d) const {
  const DeclContext* parent = d->parent();
  if (parent == nullptr) return std::nullopt;
  const Decl* pd = parent->asDecl();
  if (const auto it = class_ids_.find(pd); it != class_ids_.end())
    return pdb::ItemRef{pdb::ItemKind::Class, it->second};
  if (const auto it = namespace_ids_.find(pd); it != namespace_ids_.end())
    return pdb::ItemRef{pdb::ItemKind::Namespace, it->second};
  return std::nullopt;
}

std::optional<std::uint32_t> IlAnalyzer::templateOrigin(
    const TemplateDecl* direct, SourceLocation inst_loc) const {
  if (options_.use_direct_template_links) {
    if (direct == nullptr) return std::nullopt;
    const auto it = template_ids_.find(direct);
    if (it == template_ids_.end()) return std::nullopt;
    return it->second;
  }
  // The paper's method: scan the pre-built template list for a template
  // whose source location matches the instantiation's. Instantiations
  // inherit their pattern's location, so this succeeds for them; explicit
  // specializations carry their own location and stay unattributed
  // (the documented limitation of §3.1).
  const auto it = template_locations_.find(inst_loc);
  if (it == template_locations_.end()) return std::nullopt;
  return it->second;
}

pdb::ItemRef IlAnalyzer::typeRef(const Type* type) {
  if (type == nullptr) return {pdb::ItemKind::Type, 0};
  if (const auto* ct = type->as<ClassType>()) {
    // Figure 3 references classes directly: "cmtype cl#63".
    const auto it = class_ids_.find(ct->decl());
    if (it != class_ids_.end()) return {pdb::ItemKind::Class, it->second};
  }
  return {pdb::ItemKind::Type, typeId(type)};
}

std::uint32_t IlAnalyzer::typeId(const Type* type) {
  if (type == nullptr) return 0;
  if (const auto it = type_ids_.find(type); it != type_ids_.end())
    return it->second;

  pdb::TypeItem item;
  item.name = out_.own(type->spelling());
  // Reserve the id before recursing (self-referential types via classes).
  item.id = out_.addType(item);
  type_ids_[type] = item.id;

  switch (type->kind()) {
    case TypeKind::Builtin: {
      const auto* b = type->as<BuiltinType>();
      switch (b->builtin()) {
        case BuiltinKind::Void: item.kind = "void"; break;
        case BuiltinKind::Bool: item.kind = "bool"; break;
        case BuiltinKind::Char:
        case BuiltinKind::SChar:
        case BuiltinKind::UChar: item.kind = "char"; break;
        case BuiltinKind::WChar: item.kind = "wchar"; break;
        case BuiltinKind::Float:
        case BuiltinKind::Double:
        case BuiltinKind::LongDouble: item.kind = "float"; break;
        default: item.kind = "int"; break;
      }
      item.ikind = toString(b->builtin());
      break;
    }
    case TypeKind::Pointer:
      item.kind = "ptr";
      item.ref = typeRef(type->as<PointerType>()->pointee());
      break;
    case TypeKind::Reference:
      item.kind = "ref";
      item.ref = typeRef(type->as<ReferenceType>()->referee());
      break;
    case TypeKind::Qualified: {
      const auto* q = type->as<QualifiedType>();
      item.kind = "tref";
      item.ref = typeRef(q->base());
      if (q->isConst()) item.qualifiers.push_back("const");
      if (q->isVolatile()) item.qualifiers.push_back("volatile");
      break;
    }
    case TypeKind::Array: {
      const auto* a = type->as<ArrayType>();
      item.kind = "array";
      item.ref = typeRef(a->element());
      item.array_size = a->size();
      break;
    }
    case TypeKind::Function: {
      const auto* f = type->as<FunctionType>();
      item.kind = "func";
      item.return_type = typeRef(f->result());
      for (const Type* p : f->params()) item.params.push_back(typeRef(p));
      if (f->isConstMember()) item.qualifiers.push_back("const");
      item.has_ellipsis = f->hasEllipsis();
      item.has_exception_spec = !f->exceptionSpecs().empty();
      for (const Type* e : f->exceptionSpecs())
        item.exception_specs.push_back(typeRef(e));
      break;
    }
    case TypeKind::Class:
      // Reached only for pattern classes without a cl item: opaque.
      item.kind = "class";
      break;
    case TypeKind::Enum: {
      item.kind = "enum";
      const auto* en = type->as<EnumType>()->decl();
      for (const EnumeratorDecl* e : en->enumerators)
        item.enumerators.emplace_back(out_.own(e->name()), e->value);
      break;
    }
    case TypeKind::Typedef: {
      const auto* td = type->as<TypedefType>();
      item.kind = "typedef";
      item.ref = typeRef(td->underlying());
      break;
    }
    case TypeKind::TemplateParam:
      item.kind = "tparam";
      break;
    case TypeKind::TemplateSpecialization:
      item.kind = "dependent";
      break;
  }

  // Update the reserved slot (appended above; recursion may have added
  // more types after it, so search backwards from the end).
  for (auto it = out_.types().rbegin(); it != out_.types().rend(); ++it) {
    if (it->id == item.id) {
      *it = item;
      break;
    }
  }
  return item.id;
}

// ---------------------------------------------------------------------------
// Traversals
// ---------------------------------------------------------------------------

void IlAnalyzer::collectFiles() {
  for (const FileId file : result_.files) {
    pdb::SourceFileItem item;
    item.name = out_.own(sm_.name(file));
    const std::uint32_t id = out_.addSourceFile(std::move(item));
    file_ids_[file] = id;
  }
  for (const lex::IncludeEdge& edge : result_.includes) {
    const auto from = file_ids_.find(edge.includer);
    const auto to = file_ids_.find(edge.includee);
    if (from == file_ids_.end() || to == file_ids_.end()) continue;
    for (pdb::SourceFileItem& f : out_.sourceFiles()) {
      if (f.id == from->second) {
        f.includes.push_back(to->second);
        break;
      }
    }
  }
}

void IlAnalyzer::collectNamespaces(const DeclContext* ctx) {
  for (const Decl* child : ctx->children()) {
    if (const auto* ns = child->as<NamespaceDecl>()) {
      if (!namespace_ids_.contains(ns)) {
        pdb::NamespaceItem item;
        item.name = out_.own(ns->name());
        namespace_ids_[ns] = out_.addNamespace(std::move(item));
      }
      collectNamespaces(ns);
    } else if (const auto* alias = child->as<NamespaceAliasDecl>()) {
      pdb::NamespaceItem item;
      item.name = out_.own(alias->name());
      item.alias = alias->target != nullptr ? out_.own(alias->target->name())
                                            : std::string_view("?");
      namespace_ids_[alias] = out_.addNamespace(std::move(item));
    }
  }
}

void IlAnalyzer::collectTemplates(const DeclContext* ctx) {
  for (const Decl* child : ctx->children()) {
    if (const auto* td = child->as<TemplateDecl>()) {
      if (!options_.emit_uninstantiated_templates && td->instantiations.empty())
        continue;
      pdb::TemplateItem item;
      item.name = out_.own(td->name());
      const std::uint32_t id = out_.addTemplate(std::move(item));
      template_ids_[td] = id;
      if (td->location().valid()) template_locations_[td->location()] = id;
      // Member templates live inside the pattern class; the pattern
      // member's (definition) location keys the origin scan.
      if (td->tkind == TemplateKind::Class && td->pattern != nullptr) {
        template_locations_[td->pattern->location()] = id;
        collectTemplates(td->pattern->as<ClassDecl>());
      }
      if ((td->tkind == TemplateKind::MemberFunc ||
           td->tkind == TemplateKind::StaticMem ||
           td->tkind == TemplateKind::Function) &&
          td->pattern != nullptr) {
        template_locations_[td->pattern->location()] = id;
      }
    } else if (const auto* ns = child->as<NamespaceDecl>()) {
      collectTemplates(ns);
    } else if (const auto* cls = child->as<ClassDecl>()) {
      if (!isPattern(cls)) collectTemplates(cls);
    }
  }
}

void IlAnalyzer::collectClasses(const DeclContext* ctx) {
  for (const Decl* child : ctx->children()) {
    if (const auto* cls = child->as<ClassDecl>()) {
      if (isPattern(cls) || class_ids_.contains(cls)) continue;
      pdb::ClassItem item;
      item.name = out_.own(cls->name());
      class_ids_[cls] = out_.addClass(std::move(item));
      collectClasses(cls);  // nested classes
    } else if (const auto* ns = child->as<NamespaceDecl>()) {
      collectClasses(ns);
    }
  }
}

void IlAnalyzer::collectEnums(const DeclContext* ctx) {
  // Enums are TYPES in the PDB (Table 1); intern them even when nothing
  // else references them so their enumerators are recorded.
  for (const Decl* child : ctx->children()) {
    if (const auto* en = child->as<EnumDecl>()) {
      (void)typeId(result_.ast->enumType(en));
    } else if (const auto* ns = child->as<NamespaceDecl>()) {
      collectEnums(ns);
    } else if (const auto* cls = child->as<ClassDecl>()) {
      if (!isPattern(cls)) collectEnums(cls);
    }
  }
}

void IlAnalyzer::collectRoutines(const DeclContext* ctx) {
  for (const Decl* child : ctx->children()) {
    if (const auto* fn = child->as<FunctionDecl>()) {
      if (isPattern(fn) || routine_ids_.contains(fn)) continue;
      pdb::RoutineItem item;
      item.name = out_.own(fn->name());
      routine_ids_[fn] = out_.addRoutine(std::move(item));
    } else if (const auto* ns = child->as<NamespaceDecl>()) {
      collectRoutines(ns);
    } else if (const auto* cls = child->as<ClassDecl>()) {
      if (!isPattern(cls)) collectRoutines(cls);
    }
  }
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

void IlAnalyzer::emitTemplates() {
  std::unordered_map<std::uint32_t, std::size_t> index;
  for (std::size_t i = 0; i < out_.templates().size(); ++i)
    index[out_.templates()[i].id] = i;
  for (const auto& [decl, id] : byId(template_ids_)) {
    const auto* td = decl->as<TemplateDecl>();
    {
      pdb::TemplateItem& item = out_.templates()[index.at(id)];
      item.location = pos(td->location());
      item.kind = toString(td->tkind);
      item.text = out_.own(td->text);
      item.parent = parentRef(td);
      if (td->access() != AccessKind::None)
        item.access = toString(td->access());
      item.extent = extent(td);
    }
  }
}

void IlAnalyzer::emitClasses() {
  std::unordered_map<std::uint32_t, std::size_t> index;
  for (std::size_t i = 0; i < out_.classes().size(); ++i)
    index[out_.classes()[i].id] = i;
  for (const auto& [decl, id] : byId(class_ids_)) {
    const auto* cls = decl->as<ClassDecl>();
    {
      pdb::ClassItem& item = out_.classes()[index.at(id)];
      item.location = pos(cls->location());
      item.kind = toString(cls->tag);
      item.parent = parentRef(cls);
      if (cls->access() != AccessKind::None)
        item.access = toString(cls->access());
      item.is_specialization = cls->is_specialization;
      if (const auto origin =
              templateOrigin(cls->instantiated_from, cls->location())) {
        item.template_id = *origin;
      }
      for (const BaseSpecifier& base : cls->bases) {
        if (base.base == nullptr) continue;
        const auto it = class_ids_.find(base.base);
        if (it == class_ids_.end()) continue;
        pdb::ClassItem::Base b;
        b.cls = it->second;
        b.access = toString(base.access);
        b.is_virtual = base.is_virtual;
        item.bases.push_back(std::move(b));
      }
      for (const FriendEntry& f : cls->friends) {
        pdb::ClassItem::Friend pf;
        pf.is_class = f.is_class;
        pf.name = out_.own(f.name);
        if (f.resolved != nullptr) {
          if (const auto it = class_ids_.find(f.resolved); it != class_ids_.end())
            pf.ref = pdb::ItemRef{pdb::ItemKind::Class, it->second};
          else if (const auto rt = routine_ids_.find(f.resolved);
                   rt != routine_ids_.end())
            pf.ref = pdb::ItemRef{pdb::ItemKind::Routine, rt->second};
        }
        item.friends.push_back(std::move(pf));
      }
      for (const Decl* member : cls->children()) {
        if (const auto* fn = member->as<FunctionDecl>()) {
          const auto it = routine_ids_.find(fn);
          if (it == routine_ids_.end()) continue;
          item.funcs.push_back({it->second, pos(fn->location())});
        } else if (const auto* var = member->as<VarDecl>()) {
          pdb::ClassItem::Member m;
          m.name = out_.own(var->name());
          m.location = pos(var->location());
          m.access = toString(var->access());
          m.kind = "var";
          m.type = typeRef(var->type);
          item.members.push_back(std::move(m));
        } else if (const auto* tdf = member->as<TypedefDecl>()) {
          pdb::ClassItem::Member m;
          m.name = out_.own(tdf->name());
          m.location = pos(tdf->location());
          m.access = toString(tdf->access());
          m.kind = "type";
          m.type = typeRef(tdf->underlying);
          item.members.push_back(std::move(m));
        }
      }
      item.extent = extent(cls);
    }
  }
}

void IlAnalyzer::emitRoutines() {
  std::unordered_map<std::uint32_t, std::size_t> index;
  for (std::size_t i = 0; i < out_.routines().size(); ++i)
    index[out_.routines()[i].id] = i;
  for (const auto& [decl, id] : byId(routine_ids_)) {
    const auto* fn = decl->as<FunctionDecl>();
    {
      pdb::RoutineItem& item = out_.routines()[index.at(id)];
      item.location = pos(fn->location());
      item.parent = parentRef(fn);
      if (fn->access() != AccessKind::None)
        item.access = toString(fn->access());
      item.signature = typeId(fn->signature);
      item.linkage = fn->linkage == Linkage::C ? "C" : "C++";
      item.storage = fn->storage == StorageClass::Static
                         ? "static"
                         : (fn->storage == StorageClass::Extern ? "extern" : "NA");
      item.virtuality =
          fn->is_pure_virtual ? "pure" : (fn->is_virtual ? "virt" : "no");
      switch (fn->fkind) {
        case FunctionKind::Constructor: item.kind = "ctor"; break;
        case FunctionKind::Destructor: item.kind = "dtor"; break;
        case FunctionKind::Conversion: item.kind = "conv"; break;
        case FunctionKind::Operator: item.kind = "op"; break;
        case FunctionKind::Normal: item.kind = "routine"; break;
      }
      item.is_static = fn->is_static;
      item.is_inline = fn->is_inline;
      item.is_explicit = fn->is_explicit;
      item.is_specialization = fn->is_specialization;
      item.defined = fn->is_defined;
      if (const auto origin =
              templateOrigin(fn->instantiated_from, fn->location())) {
        item.template_id = *origin;
      }
      collectCalls(fn, item);
      item.extent = extent(fn);
    }
  }
}

void IlAnalyzer::collectCalls(const FunctionDecl* fn, pdb::RoutineItem& item) {
  const auto addCall = [&](const FunctionDecl* target, bool is_virtual,
                           SourceLocation loc) {
    if (target == nullptr) return;
    const auto it = routine_ids_.find(target);
    if (it == routine_ids_.end()) return;
    item.calls.push_back({it->second, is_virtual, pos(loc)});
  };

  // Constructor initializers are constructor calls (paper §3.1).
  for (const auto& init : fn->ctor_inits) {
    addCall(init.resolved_ctor, false, init.location);
  }
  if (fn->body == nullptr) return;

  // Recursive walk carrying the enclosing scope's end location so that
  // destructor calls implied by lifetimes get a calling location.
  std::function<void(const Stmt*, SourceLocation)> visit =
      [&](const Stmt* s, SourceLocation scope_end) {
        if (s == nullptr) return;
        switch (s->kind()) {
          case StmtKind::Compound: {
            const SourceLocation end = s->extent().end;
            for (const Stmt* c : s->as<CompoundStmt>()->body) visit(c, end);
            return;
          }
          case StmtKind::DeclStatement: {
            for (const VarDecl* var : s->as<DeclStmt>()->vars) {
              addCall(var->resolved_ctor, false, var->location());
              // The destructor runs where the lifetime ends.
              addCall(var->resolved_dtor, false, scope_end);
              if (var->init != nullptr) visit(var->init, scope_end);
              for (const Expr* a : var->ctor_args) visit(a, scope_end);
            }
            return;
          }
          case StmtKind::Call: {
            const auto* call = s->as<CallExpr>();
            addCall(call->resolved, call->is_virtual_call, call->call_location);
            break;
          }
          case StmtKind::Binary: {
            const auto* bin = s->as<BinaryExpr>();
            addCall(bin->resolved_operator, false, s->extent().begin);
            break;
          }
          case StmtKind::Index: {
            const auto* idx = s->as<IndexExpr>();
            addCall(idx->resolved_operator, false, s->extent().begin);
            break;
          }
          case StmtKind::Construct: {
            const auto* c = s->as<ConstructExpr>();
            addCall(c->ctor, false, s->extent().begin);
            break;
          }
          case StmtKind::New: {
            const auto* n = s->as<NewExpr>();
            addCall(n->ctor, false, s->extent().begin);
            break;
          }
          case StmtKind::Delete: {
            const auto* d = s->as<DeleteExpr>();
            addCall(d->dtor, false, s->extent().begin);
            break;
          }
          default:
            break;
        }
        forEachChild(s, [&](const Stmt* child) { visit(child, scope_end); });
      };
  visit(fn->body, fn->bodyExtent().end);
}

void IlAnalyzer::emitNamespaces() {
  std::unordered_map<std::uint32_t, std::size_t> index;
  for (std::size_t i = 0; i < out_.namespaces().size(); ++i)
    index[out_.namespaces()[i].id] = i;
  for (const auto& [decl, id] : byId(namespace_ids_)) {
    {
      pdb::NamespaceItem& item = out_.namespaces()[index.at(id)];
      item.location = pos(decl->location());
      if (const auto* ns = decl->as<NamespaceDecl>()) {
        for (const Decl* member : ns->children()) {
          if (const auto it = routine_ids_.find(member); it != routine_ids_.end())
            item.members.push_back({pdb::ItemKind::Routine, it->second});
          else if (const auto ct = class_ids_.find(member); ct != class_ids_.end())
            item.members.push_back({pdb::ItemKind::Class, ct->second});
          else if (const auto nt = namespace_ids_.find(member);
                   nt != namespace_ids_.end())
            item.members.push_back({pdb::ItemKind::Namespace, nt->second});
          else if (const auto tt = template_ids_.find(member);
                   tt != template_ids_.end())
            item.members.push_back({pdb::ItemKind::Template, tt->second});
        }
      }
    }
  }
}

void IlAnalyzer::emitMacros() {
  for (const lex::MacroRecord& record : result_.macros) {
    pdb::MacroItem item;
    item.name = out_.own(record.name);
    item.location = pos(record.location);
    item.kind = record.kind == lex::MacroRecord::Kind::Define ? "def" : "undef";
    item.text = out_.own(record.text);
    out_.addMacro(std::move(item));
  }
}

}  // namespace pdt::ilanalyzer
