#include "ilanalyzer/analyzer.h"

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "ast/walk.h"
#include "support/trace.h"

namespace pdt::ilanalyzer {

using namespace ast;

namespace {

/// Snapshots a decl -> id map ordered by id. The emit passes must not
/// iterate the unordered_map directly: its order depends on pointer
/// hashes (i.e. heap addresses), and emission creates referenced type
/// items on demand, so hash-order iteration makes the PDB output vary
/// with allocator state — in particular between the main thread and the
/// worker threads of the parallel driver. Ids were assigned by the
/// deterministic collect* AST traversals, so id order is stable.
template <typename K>
std::vector<std::pair<K, std::uint32_t>> byId(
    const std::unordered_map<K, std::uint32_t>& map) {
  std::vector<std::pair<K, std::uint32_t>> items(map.begin(), map.end());
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return items;
}

}  // namespace

IlAnalyzer::IlAnalyzer(const frontend::CompileResult& result,
                       const SourceManager& sm, AnalyzerOptions options)
    : result_(result), sm_(sm), options_(options) {}

pdb::PdbFile analyze(const frontend::CompileResult& result,
                     const SourceManager& sm, AnalyzerOptions options) {
  PDT_TRACE_SCOPE("il.analyze", sm.name(result.main_file));
  pdb::PdbFile out = IlAnalyzer(result, sm, options).analyze();
  trace::count(trace::Counter::IlItems, out.itemCount());
  return out;
}

pdb::PdbFile IlAnalyzer::analyze() {
  const TranslationUnitDecl* tu = result_.ast->translationUnit();
  // Separate traversals, as in the paper: ids are assigned kind by kind so
  // each item kind can reference the others.
  collectFiles();
  collectNamespaces(tu);
  collectTemplates(tu);  // the template list built "in advance"
  collectClasses(tu);
  collectEnums(tu);
  collectRoutines(tu);
  emitTemplates();
  emitClasses();
  emitRoutines();
  emitNamespaces();
  emitMacros();
  emitDefUse();
  out_.reindex();
  return std::move(out_);
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

bool IlAnalyzer::isPattern(const Decl* d) const {
  if (const auto* cls = d->as<ClassDecl>()) {
    return cls->describing_template != nullptr && cls->instantiated_from == nullptr;
  }
  if (const auto* fn = d->as<FunctionDecl>()) {
    if (fn->describing_template != nullptr && fn->instantiated_from == nullptr &&
        !fn->is_specialization)
      return true;
    // Members of a pattern class are patterns too.
    if (const ClassDecl* owner = fn->memberOf()) return isPattern(owner);
  }
  if (const auto* var = d->as<VarDecl>()) {
    if (var->parent() != nullptr) {
      if (const auto* cls = var->parent()->asDecl()->as<ClassDecl>())
        return isPattern(cls);
    }
  }
  return false;
}

pdb::Pos IlAnalyzer::pos(SourceLocation loc) const {
  if (!loc.valid()) return {};
  const auto it = file_ids_.find(loc.file);
  if (it == file_ids_.end()) return {};
  return {it->second, loc.line, loc.column};
}

pdb::Extent IlAnalyzer::extent(const Decl* d) const {
  pdb::Extent e;
  e.header_begin = pos(d->headerExtent().begin);
  e.header_end = pos(d->headerExtent().end);
  e.body_begin = pos(d->bodyExtent().begin);
  e.body_end = pos(d->bodyExtent().end);
  return e;
}

std::optional<pdb::ItemRef> IlAnalyzer::parentRef(const Decl* d) const {
  const DeclContext* parent = d->parent();
  if (parent == nullptr) return std::nullopt;
  const Decl* pd = parent->asDecl();
  if (const auto it = class_ids_.find(pd); it != class_ids_.end())
    return pdb::ItemRef{pdb::ItemKind::Class, it->second};
  if (const auto it = namespace_ids_.find(pd); it != namespace_ids_.end())
    return pdb::ItemRef{pdb::ItemKind::Namespace, it->second};
  return std::nullopt;
}

std::optional<std::uint32_t> IlAnalyzer::templateOrigin(
    const TemplateDecl* direct, SourceLocation inst_loc) const {
  if (options_.use_direct_template_links) {
    if (direct == nullptr) return std::nullopt;
    const auto it = template_ids_.find(direct);
    if (it == template_ids_.end()) return std::nullopt;
    return it->second;
  }
  // The paper's method: scan the pre-built template list for a template
  // whose source location matches the instantiation's. Instantiations
  // inherit their pattern's location, so this succeeds for them; explicit
  // specializations carry their own location and stay unattributed
  // (the documented limitation of §3.1).
  const auto it = template_locations_.find(inst_loc);
  if (it == template_locations_.end()) return std::nullopt;
  return it->second;
}

pdb::ItemRef IlAnalyzer::typeRef(const Type* type) {
  if (type == nullptr) return {pdb::ItemKind::Type, 0};
  if (const auto* ct = type->as<ClassType>()) {
    // Figure 3 references classes directly: "cmtype cl#63".
    const auto it = class_ids_.find(ct->decl());
    if (it != class_ids_.end()) return {pdb::ItemKind::Class, it->second};
  }
  return {pdb::ItemKind::Type, typeId(type)};
}

std::uint32_t IlAnalyzer::typeId(const Type* type) {
  if (type == nullptr) return 0;
  if (const auto it = type_ids_.find(type); it != type_ids_.end())
    return it->second;

  pdb::TypeItem item;
  item.name = out_.own(type->spelling());
  // Reserve the id before recursing (self-referential types via classes).
  item.id = out_.addType(item);
  type_ids_[type] = item.id;

  switch (type->kind()) {
    case TypeKind::Builtin: {
      const auto* b = type->as<BuiltinType>();
      switch (b->builtin()) {
        case BuiltinKind::Void: item.kind = "void"; break;
        case BuiltinKind::Bool: item.kind = "bool"; break;
        case BuiltinKind::Char:
        case BuiltinKind::SChar:
        case BuiltinKind::UChar: item.kind = "char"; break;
        case BuiltinKind::WChar: item.kind = "wchar"; break;
        case BuiltinKind::Float:
        case BuiltinKind::Double:
        case BuiltinKind::LongDouble: item.kind = "float"; break;
        default: item.kind = "int"; break;
      }
      item.ikind = toString(b->builtin());
      break;
    }
    case TypeKind::Pointer:
      item.kind = "ptr";
      item.ref = typeRef(type->as<PointerType>()->pointee());
      break;
    case TypeKind::Reference:
      item.kind = "ref";
      item.ref = typeRef(type->as<ReferenceType>()->referee());
      break;
    case TypeKind::Qualified: {
      const auto* q = type->as<QualifiedType>();
      item.kind = "tref";
      item.ref = typeRef(q->base());
      if (q->isConst()) item.qualifiers.push_back("const");
      if (q->isVolatile()) item.qualifiers.push_back("volatile");
      break;
    }
    case TypeKind::Array: {
      const auto* a = type->as<ArrayType>();
      item.kind = "array";
      item.ref = typeRef(a->element());
      item.array_size = a->size();
      break;
    }
    case TypeKind::Function: {
      const auto* f = type->as<FunctionType>();
      item.kind = "func";
      item.return_type = typeRef(f->result());
      for (const Type* p : f->params()) item.params.push_back(typeRef(p));
      if (f->isConstMember()) item.qualifiers.push_back("const");
      item.has_ellipsis = f->hasEllipsis();
      item.has_exception_spec = !f->exceptionSpecs().empty();
      for (const Type* e : f->exceptionSpecs())
        item.exception_specs.push_back(typeRef(e));
      break;
    }
    case TypeKind::Class:
      // Reached only for pattern classes without a cl item: opaque.
      item.kind = "class";
      break;
    case TypeKind::Enum: {
      item.kind = "enum";
      const auto* en = type->as<EnumType>()->decl();
      for (const EnumeratorDecl* e : en->enumerators)
        item.enumerators.emplace_back(out_.own(e->name()), e->value);
      break;
    }
    case TypeKind::Typedef: {
      const auto* td = type->as<TypedefType>();
      item.kind = "typedef";
      item.ref = typeRef(td->underlying());
      break;
    }
    case TypeKind::TemplateParam:
      item.kind = "tparam";
      break;
    case TypeKind::TemplateSpecialization:
      item.kind = "dependent";
      break;
  }

  // Update the reserved slot (appended above; recursion may have added
  // more types after it, so search backwards from the end).
  for (auto it = out_.types().rbegin(); it != out_.types().rend(); ++it) {
    if (it->id == item.id) {
      *it = item;
      break;
    }
  }
  return item.id;
}

// ---------------------------------------------------------------------------
// Traversals
// ---------------------------------------------------------------------------

void IlAnalyzer::collectFiles() {
  for (const FileId file : result_.files) {
    pdb::SourceFileItem item;
    item.name = out_.own(sm_.name(file));
    const std::uint32_t id = out_.addSourceFile(std::move(item));
    file_ids_[file] = id;
  }
  for (const lex::IncludeEdge& edge : result_.includes) {
    const auto from = file_ids_.find(edge.includer);
    const auto to = file_ids_.find(edge.includee);
    if (from == file_ids_.end() || to == file_ids_.end()) continue;
    for (pdb::SourceFileItem& f : out_.sourceFiles()) {
      if (f.id == from->second) {
        f.includes.push_back(to->second);
        break;
      }
    }
  }
}

void IlAnalyzer::collectNamespaces(const DeclContext* ctx) {
  for (const Decl* child : ctx->children()) {
    if (const auto* ns = child->as<NamespaceDecl>()) {
      if (!namespace_ids_.contains(ns)) {
        pdb::NamespaceItem item;
        item.name = out_.own(ns->name());
        namespace_ids_[ns] = out_.addNamespace(std::move(item));
      }
      collectNamespaces(ns);
    } else if (const auto* alias = child->as<NamespaceAliasDecl>()) {
      pdb::NamespaceItem item;
      item.name = out_.own(alias->name());
      item.alias = alias->target != nullptr ? out_.own(alias->target->name())
                                            : std::string_view("?");
      namespace_ids_[alias] = out_.addNamespace(std::move(item));
    }
  }
}

void IlAnalyzer::collectTemplates(const DeclContext* ctx) {
  for (const Decl* child : ctx->children()) {
    if (const auto* td = child->as<TemplateDecl>()) {
      if (!options_.emit_uninstantiated_templates && td->instantiations.empty())
        continue;
      pdb::TemplateItem item;
      item.name = out_.own(td->name());
      const std::uint32_t id = out_.addTemplate(std::move(item));
      template_ids_[td] = id;
      if (td->location().valid()) template_locations_[td->location()] = id;
      // Member templates live inside the pattern class; the pattern
      // member's (definition) location keys the origin scan.
      if (td->tkind == TemplateKind::Class && td->pattern != nullptr) {
        template_locations_[td->pattern->location()] = id;
        collectTemplates(td->pattern->as<ClassDecl>());
      }
      if ((td->tkind == TemplateKind::MemberFunc ||
           td->tkind == TemplateKind::StaticMem ||
           td->tkind == TemplateKind::Function) &&
          td->pattern != nullptr) {
        template_locations_[td->pattern->location()] = id;
      }
    } else if (const auto* ns = child->as<NamespaceDecl>()) {
      collectTemplates(ns);
    } else if (const auto* cls = child->as<ClassDecl>()) {
      if (!isPattern(cls)) collectTemplates(cls);
    }
  }
}

void IlAnalyzer::collectClasses(const DeclContext* ctx) {
  for (const Decl* child : ctx->children()) {
    if (const auto* cls = child->as<ClassDecl>()) {
      if (isPattern(cls) || class_ids_.contains(cls)) continue;
      pdb::ClassItem item;
      item.name = out_.own(cls->name());
      class_ids_[cls] = out_.addClass(std::move(item));
      collectClasses(cls);  // nested classes
    } else if (const auto* ns = child->as<NamespaceDecl>()) {
      collectClasses(ns);
    }
  }
}

void IlAnalyzer::collectEnums(const DeclContext* ctx) {
  // Enums are TYPES in the PDB (Table 1); intern them even when nothing
  // else references them so their enumerators are recorded.
  for (const Decl* child : ctx->children()) {
    if (const auto* en = child->as<EnumDecl>()) {
      (void)typeId(result_.ast->enumType(en));
    } else if (const auto* ns = child->as<NamespaceDecl>()) {
      collectEnums(ns);
    } else if (const auto* cls = child->as<ClassDecl>()) {
      if (!isPattern(cls)) collectEnums(cls);
    }
  }
}

void IlAnalyzer::collectRoutines(const DeclContext* ctx) {
  for (const Decl* child : ctx->children()) {
    if (const auto* fn = child->as<FunctionDecl>()) {
      if (isPattern(fn) || routine_ids_.contains(fn)) continue;
      pdb::RoutineItem item;
      item.name = out_.own(fn->name());
      routine_ids_[fn] = out_.addRoutine(std::move(item));
    } else if (const auto* ns = child->as<NamespaceDecl>()) {
      collectRoutines(ns);
    } else if (const auto* cls = child->as<ClassDecl>()) {
      if (!isPattern(cls)) collectRoutines(cls);
    }
  }
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

void IlAnalyzer::emitTemplates() {
  std::unordered_map<std::uint32_t, std::size_t> index;
  for (std::size_t i = 0; i < out_.templates().size(); ++i)
    index[out_.templates()[i].id] = i;
  for (const auto& [decl, id] : byId(template_ids_)) {
    const auto* td = decl->as<TemplateDecl>();
    {
      pdb::TemplateItem& item = out_.templates()[index.at(id)];
      item.location = pos(td->location());
      item.kind = toString(td->tkind);
      item.text = out_.own(td->text);
      item.parent = parentRef(td);
      if (td->access() != AccessKind::None)
        item.access = toString(td->access());
      item.extent = extent(td);
    }
  }
}

void IlAnalyzer::emitClasses() {
  std::unordered_map<std::uint32_t, std::size_t> index;
  for (std::size_t i = 0; i < out_.classes().size(); ++i)
    index[out_.classes()[i].id] = i;
  for (const auto& [decl, id] : byId(class_ids_)) {
    const auto* cls = decl->as<ClassDecl>();
    {
      pdb::ClassItem& item = out_.classes()[index.at(id)];
      item.location = pos(cls->location());
      item.kind = toString(cls->tag);
      item.parent = parentRef(cls);
      if (cls->access() != AccessKind::None)
        item.access = toString(cls->access());
      item.is_specialization = cls->is_specialization;
      if (const auto origin =
              templateOrigin(cls->instantiated_from, cls->location())) {
        item.template_id = *origin;
      }
      for (const BaseSpecifier& base : cls->bases) {
        if (base.base == nullptr) continue;
        const auto it = class_ids_.find(base.base);
        if (it == class_ids_.end()) continue;
        pdb::ClassItem::Base b;
        b.cls = it->second;
        b.access = toString(base.access);
        b.is_virtual = base.is_virtual;
        item.bases.push_back(std::move(b));
      }
      for (const FriendEntry& f : cls->friends) {
        pdb::ClassItem::Friend pf;
        pf.is_class = f.is_class;
        pf.name = out_.own(f.name);
        if (f.resolved != nullptr) {
          if (const auto it = class_ids_.find(f.resolved); it != class_ids_.end())
            pf.ref = pdb::ItemRef{pdb::ItemKind::Class, it->second};
          else if (const auto rt = routine_ids_.find(f.resolved);
                   rt != routine_ids_.end())
            pf.ref = pdb::ItemRef{pdb::ItemKind::Routine, rt->second};
        }
        item.friends.push_back(std::move(pf));
      }
      for (const Decl* member : cls->children()) {
        if (const auto* fn = member->as<FunctionDecl>()) {
          const auto it = routine_ids_.find(fn);
          if (it == routine_ids_.end()) continue;
          item.funcs.push_back({it->second, pos(fn->location())});
        } else if (const auto* var = member->as<VarDecl>()) {
          pdb::ClassItem::Member m;
          m.name = out_.own(var->name());
          m.location = pos(var->location());
          m.access = toString(var->access());
          m.kind = "var";
          m.type = typeRef(var->type);
          item.members.push_back(std::move(m));
        } else if (const auto* tdf = member->as<TypedefDecl>()) {
          pdb::ClassItem::Member m;
          m.name = out_.own(tdf->name());
          m.location = pos(tdf->location());
          m.access = toString(tdf->access());
          m.kind = "type";
          m.type = typeRef(tdf->underlying);
          item.members.push_back(std::move(m));
        }
      }
      item.extent = extent(cls);
    }
  }
}

void IlAnalyzer::emitRoutines() {
  std::unordered_map<std::uint32_t, std::size_t> index;
  for (std::size_t i = 0; i < out_.routines().size(); ++i)
    index[out_.routines()[i].id] = i;
  for (const auto& [decl, id] : byId(routine_ids_)) {
    const auto* fn = decl->as<FunctionDecl>();
    {
      pdb::RoutineItem& item = out_.routines()[index.at(id)];
      item.location = pos(fn->location());
      item.parent = parentRef(fn);
      if (fn->access() != AccessKind::None)
        item.access = toString(fn->access());
      item.signature = typeId(fn->signature);
      item.linkage = fn->linkage == Linkage::C ? "C" : "C++";
      item.storage = fn->storage == StorageClass::Static
                         ? "static"
                         : (fn->storage == StorageClass::Extern ? "extern" : "NA");
      item.virtuality =
          fn->is_pure_virtual ? "pure" : (fn->is_virtual ? "virt" : "no");
      switch (fn->fkind) {
        case FunctionKind::Constructor: item.kind = "ctor"; break;
        case FunctionKind::Destructor: item.kind = "dtor"; break;
        case FunctionKind::Conversion: item.kind = "conv"; break;
        case FunctionKind::Operator: item.kind = "op"; break;
        case FunctionKind::Normal: item.kind = "routine"; break;
      }
      item.is_static = fn->is_static;
      item.is_inline = fn->is_inline;
      item.is_explicit = fn->is_explicit;
      item.is_specialization = fn->is_specialization;
      item.defined = fn->is_defined;
      if (const auto origin =
              templateOrigin(fn->instantiated_from, fn->location())) {
        item.template_id = *origin;
      }
      collectCalls(fn, item);
      item.extent = extent(fn);
    }
  }
}

void IlAnalyzer::collectCalls(const FunctionDecl* fn, pdb::RoutineItem& item) {
  const auto addCall = [&](const FunctionDecl* target, bool is_virtual,
                           SourceLocation loc) {
    if (target == nullptr) return;
    const auto it = routine_ids_.find(target);
    if (it == routine_ids_.end()) return;
    item.calls.push_back({it->second, is_virtual, pos(loc)});
  };

  // Constructor initializers are constructor calls (paper §3.1).
  for (const auto& init : fn->ctor_inits) {
    addCall(init.resolved_ctor, false, init.location);
  }
  if (fn->body == nullptr) return;

  // Recursive walk carrying the enclosing scope's end location so that
  // destructor calls implied by lifetimes get a calling location.
  std::function<void(const Stmt*, SourceLocation)> visit =
      [&](const Stmt* s, SourceLocation scope_end) {
        if (s == nullptr) return;
        switch (s->kind()) {
          case StmtKind::Compound: {
            const SourceLocation end = s->extent().end;
            for (const Stmt* c : s->as<CompoundStmt>()->body) visit(c, end);
            return;
          }
          case StmtKind::DeclStatement: {
            for (const VarDecl* var : s->as<DeclStmt>()->vars) {
              addCall(var->resolved_ctor, false, var->location());
              // The destructor runs where the lifetime ends.
              addCall(var->resolved_dtor, false, scope_end);
              if (var->init != nullptr) visit(var->init, scope_end);
              for (const Expr* a : var->ctor_args) visit(a, scope_end);
            }
            return;
          }
          case StmtKind::Call: {
            const auto* call = s->as<CallExpr>();
            addCall(call->resolved, call->is_virtual_call, call->call_location);
            break;
          }
          case StmtKind::Binary: {
            const auto* bin = s->as<BinaryExpr>();
            addCall(bin->resolved_operator, false, s->extent().begin);
            break;
          }
          case StmtKind::Index: {
            const auto* idx = s->as<IndexExpr>();
            addCall(idx->resolved_operator, false, s->extent().begin);
            break;
          }
          case StmtKind::Construct: {
            const auto* c = s->as<ConstructExpr>();
            addCall(c->ctor, false, s->extent().begin);
            break;
          }
          case StmtKind::New: {
            const auto* n = s->as<NewExpr>();
            addCall(n->ctor, false, s->extent().begin);
            break;
          }
          case StmtKind::Delete: {
            const auto* d = s->as<DeleteExpr>();
            addCall(d->dtor, false, s->extent().begin);
            break;
          }
          default:
            break;
        }
        forEachChild(s, [&](const Stmt* child) { visit(child, scope_end); });
      };
  visit(fn->body, fn->bodyExtent().end);
}

void IlAnalyzer::emitDefUse() {
  for (const auto& [decl, id] : byId(routine_ids_)) {
    const auto* fn = decl->as<FunctionDecl>();
    if (fn == nullptr || fn->body == nullptr) continue;
    pdb::DefUseItem item;
    item.routine = id;
    collectDefUse(fn, item);
    if (!item.events.empty()) out_.addDefUse(std::move(item));
  }
}

// Statement-level def-use extraction (docs/PDB_FORMAT.md §du). One
// deterministic source-order walk per routine body emits three event
// kinds: Def (storage written), Use (storage read), and structural
// markers from a closed vocabulary that let consumers rebuild a CFG-lite
// without reparsing sources. Only storage the routine owns is tracked —
// parameters, body locals, and member paths rooted at `this` or a local —
// because the dataflow rules built on the stream are intra-procedural.
void IlAnalyzer::collectDefUse(const FunctionDecl* fn, pdb::DefUseItem& item) {
  namespace du = pdb::du;
  // Locals the stream tracks: parameters plus every VarDecl declared in
  // the body (DeclStmts and catch-handler variables).
  std::unordered_map<const Decl*, std::uint8_t> tracked;
  const auto typeFlags = [](const ast::Type* t) -> std::uint8_t {
    t = canonical(t);
    if (t == nullptr) return 0;
    if (t->kind() == TypeKind::Pointer) return du::kPointer;
    if (t->kind() == TypeKind::Reference) return du::kReference;
    return 0;
  };
  for (const ParamDecl* p : fn->params)
    if (!p->name().empty()) tracked.emplace(p, typeFlags(p->type));
  walk(fn->body, [&](const Stmt* s) {
    if (const auto* ds = s->as<DeclStmt>()) {
      for (const VarDecl* var : ds->vars)
        if (!var->name().empty()) tracked.emplace(var, typeFlags(var->type));
    } else if (const auto* ts = s->as<TryStmt>()) {
      for (const TryStmt::Handler& h : ts->handlers)
        if (h.var != nullptr && !h.var->name().empty())
          tracked.emplace(h.var, typeFlags(h.var->type));
    }
  });

  // Depth of conditionally-evaluated expression context (short-circuit
  // rhs, conditional-operator arms). Defs emitted there may not execute,
  // so they are weakened to kUnknown: they gen but never kill, and the
  // dataflow rules treat the variable as escaped.
  std::uint32_t cond_depth = 0;
  const auto event = [&](pdb::DuOp op, std::uint8_t flags,
                         std::string_view name, SourceLocation loc) {
    if (op == pdb::DuOp::Def && cond_depth > 0) flags |= pdb::du::kUnknown;
    item.events.push_back({op, flags, pdb::PdbFile::intern(name), pos(loc)});
  };
  const auto marker = [&](std::string_view kind, SourceLocation loc) {
    event(pdb::DuOp::Marker, 0, kind, loc);
  };

  /// Variable path of an lvalue expression: "x", "this.top", "s.rep.len";
  /// empty when the expression does not name tracked storage.
  std::function<std::string(const Expr*)> pathOf = [&](const Expr* e)
      -> std::string {
    if (e == nullptr) return {};
    switch (e->kind()) {
      case StmtKind::This: return "this";
      case StmtKind::DeclRef: {
        const auto* ref = e->as<DeclRefExpr>();
        if (ref->decl != nullptr && tracked.contains(ref->decl))
          return ref->name;
        return {};
      }
      case StmtKind::Member: {
        const auto* mem = e->as<MemberExpr>();
        const std::string base = pathOf(mem->base);
        if (base.empty()) return {};
        return base + "." + mem->member;
      }
      case StmtKind::Cast:
        return pathOf(e->as<CastExpr>()->operand);
      default: return {};
    }
  };
  const auto flagsOfPath = [&](const Expr* e) -> std::uint8_t {
    // Member paths carry kMember plus the member's own type flags; plain
    // DeclRefs carry the tracked variable's type flags.
    if (e->kind() == StmtKind::Member)
      return static_cast<std::uint8_t>(du::kMember | typeFlags(e->type));
    if (const auto* ref = e->as<DeclRefExpr>()) {
      if (const auto it = tracked.find(ref->decl); it != tracked.end())
        return it->second;
    }
    return 0;
  };
  /// True for an rhs that is a null pointer constant (possibly cast).
  std::function<bool(const Expr*)> isNullConstant = [&](const Expr* e) -> bool {
    if (e == nullptr) return false;
    if (const auto* lit = e->as<IntLitExpr>()) return lit->value == 0;
    if (const auto* cast = e->as<CastExpr>())
      return isNullConstant(cast->operand);
    return false;
  };

  enum class Mode { Read, Write, ReadWrite };
  // Expression walk. `extra` adds flags to the event the expression
  // itself produces (e.g. kDeref on the operand of unary '*').
  std::function<void(const Expr*, Mode, std::uint8_t)> visitExpr;
  /// Emit use/def events for an lvalue path, or fall back to visiting
  /// children as reads when the expression names no tracked storage.
  const auto lvalue = [&](const Expr* e, Mode mode, std::uint8_t extra) {
    const std::string path = pathOf(e);
    if (path.empty() || path == "this") {
      // Not tracked storage: its subexpressions are still reads.
      if (const auto* mem = e->as<MemberExpr>()) {
        visitExpr(mem->base, Mode::Read,
                  mem->is_arrow ? du::kDeref : std::uint8_t{0});
      } else {
        forEachChild(e, [&](const Stmt* c) {
          if (const auto* ce = dynamic_cast<const Expr*>(c))
            visitExpr(ce, Mode::Read, 0);
        });
      }
      return;
    }
    // An arrow access reads (and dereferences) the base pointer.
    if (const auto* mem = e->as<MemberExpr>(); mem != nullptr && mem->is_arrow)
      visitExpr(mem->base, Mode::Read, du::kDeref);
    const auto flags = static_cast<std::uint8_t>(flagsOfPath(e) | extra);
    const SourceLocation loc = e->extent().begin;
    if (mode != Mode::Write) event(pdb::DuOp::Use, flags, path, loc);
    if (mode != Mode::Read) event(pdb::DuOp::Def, flags, path, loc);
  };
  /// Conservative argument handling: an argument passed by non-const
  /// reference or pointer — or to an unresolved callee — may be written.
  const auto visitArg = [&](const Expr* arg, const ast::Type* param_type,
                            bool callee_known) {
    const std::string path = pathOf(arg);
    bool may_write = !callee_known;
    if (param_type != nullptr) {
      if (const auto* ref = canonical(param_type)->as<ReferenceType>())
        may_write = ref->referee() == nullptr ||
                    ref->referee()->kind() != TypeKind::Qualified ||
                    !ref->referee()->as<QualifiedType>()->isConst();
      // By-value and const-ref parameters cannot write the argument.
    }
    if (!path.empty() && path != "this" && may_write) {
      lvalue(arg, Mode::Read, 0);
      event(pdb::DuOp::Def,
            static_cast<std::uint8_t>(flagsOfPath(arg) | du::kUnknown), path,
            arg->extent().begin);
    } else {
      visitExpr(arg, Mode::Read, 0);
    }
  };
  const auto visitCallArgs = [&](const std::vector<Expr*>& args,
                                 const FunctionDecl* callee) {
    for (std::size_t i = 0; i < args.size(); ++i) {
      const ast::Type* param_type =
          callee != nullptr && i < callee->params.size()
              ? callee->params[i]->type
              : nullptr;
      visitArg(args[i], param_type, callee != nullptr);
    }
  };

  const auto isAssignOp = [](std::string_view op) {
    if (op == "=") return true;
    return op.size() >= 2 && op.back() == '=' && op != "==" && op != "!=" &&
           op != "<=" && op != ">=";
  };
  /// Trailing read of an lvalue whose new value is consumed by the
  /// enclosing expression (`y = (x = 5)` reads x after defining it).
  const auto useOf = [&](const Expr* e) {
    const std::string path = pathOf(e);
    if (!path.empty() && path != "this")
      event(pdb::DuOp::Use, flagsOfPath(e), path, e->extent().begin);
  };
  /// Assignment or compound assignment; `value_used` is false only in
  /// value-discarding positions (expression statements, for-increments).
  const auto assign = [&](const BinaryExpr* bin, bool value_used) {
    // Evaluation order for the stream: the rhs read precedes the lhs
    // def so `x = x + 1` chains correctly.
    visitExpr(bin->rhs, Mode::Read, 0);
    std::uint8_t def_flags = 0;
    if (bin->op == "=" && isNullConstant(bin->rhs))
      def_flags |= du::kNullValue;
    if (bin->resolved_operator != nullptr) {
      // Overloaded assignment is a member call on the lhs.
      visitArg(bin->lhs, nullptr, false);
      return;
    }
    lvalue(bin->lhs, bin->op == "=" ? Mode::Write : Mode::ReadWrite,
           def_flags);
    if (value_used) useOf(bin->lhs);
  };
  const auto incdec = [&](const UnaryExpr* un, bool value_used) {
    visitExpr(un->operand, Mode::ReadWrite, 0);
    if (value_used) useOf(un->operand);
  };

  visitExpr = [&](const Expr* e, Mode mode, std::uint8_t extra) {
    if (e == nullptr) return;
    switch (e->kind()) {
      case StmtKind::DeclRef:
      case StmtKind::Member:
        lvalue(e, mode, extra);
        return;
      case StmtKind::Unary: {
        const auto* un = e->as<UnaryExpr>();
        if (un->op == "&") {
          // Address taken: the storage escapes, so its value is unknown
          // from here on (and aliased writes are possible).
          const std::string path = pathOf(un->operand);
          if (!path.empty() && path != "this") {
            lvalue(un->operand, Mode::Read, 0);
            event(pdb::DuOp::Def,
                  static_cast<std::uint8_t>(flagsOfPath(un->operand) |
                                            du::kUnknown),
                  path, e->extent().begin);
          } else {
            visitExpr(un->operand, Mode::Read, 0);
          }
          return;
        }
        if (un->op == "*") {
          visitExpr(un->operand, Mode::Read, du::kDeref);
          return;
        }
        if (un->op == "++" || un->op == "--") {
          incdec(un, /*value_used=*/true);
          return;
        }
        visitExpr(un->operand, Mode::Read, 0);
        return;
      }
      case StmtKind::Binary: {
        const auto* bin = e->as<BinaryExpr>();
        if (isAssignOp(bin->op)) {
          assign(bin, /*value_used=*/true);
          return;
        }
        if (bin->op == "&&" || bin->op == "||") {
          // The rhs may never execute; defs inside it become weak.
          visitExpr(bin->lhs, Mode::Read, 0);
          ++cond_depth;
          visitExpr(bin->rhs, Mode::Read, 0);
          --cond_depth;
          return;
        }
        visitExpr(bin->lhs, Mode::Read, 0);
        visitExpr(bin->rhs, Mode::Read, 0);
        return;
      }
      case StmtKind::Conditional: {
        const auto* c = e->as<ConditionalExpr>();
        visitExpr(c->condition, Mode::Read, 0);
        // Either arm may be skipped; defs inside them become weak.
        ++cond_depth;
        visitExpr(c->true_value, Mode::Read, 0);
        visitExpr(c->false_value, Mode::Read, 0);
        --cond_depth;
        return;
      }
      case StmtKind::Call: {
        const auto* call = e->as<CallExpr>();
        // A method call reads its receiver; a non-const (or unresolved)
        // method may also write it.
        if (const auto* mem = call->callee->as<MemberExpr>()) {
          const bool is_const_call =
              call->resolved != nullptr && call->resolved->is_const;
          if (mem->is_arrow) visitExpr(mem->base, Mode::Read, du::kDeref);
          else if (is_const_call) visitExpr(mem->base, Mode::Read, 0);
          else visitArg(mem->base, nullptr, false);
        } else if (call->callee->kind() != StmtKind::DeclRef) {
          visitExpr(call->callee, Mode::Read, 0);
        } else if (const auto* ref = call->callee->as<DeclRefExpr>();
                   ref->decl != nullptr && tracked.contains(ref->decl)) {
          // Calling through a local function pointer reads (and derefs) it.
          visitExpr(call->callee, Mode::Read, du::kDeref);
        }
        visitCallArgs(call->args, call->resolved);
        return;
      }
      case StmtKind::Index: {
        const auto* idx = e->as<IndexExpr>();
        // Writing an element writes through the base, not the base
        // variable itself — a deref read of the base either way.
        const std::uint8_t base_deref =
            idx->resolved_operator == nullptr ? du::kDeref : std::uint8_t{0};
        visitExpr(idx->base, Mode::Read, base_deref);
        visitExpr(idx->index, Mode::Read, 0);
        return;
      }
      case StmtKind::Construct: {
        const auto* c = e->as<ConstructExpr>();
        visitCallArgs(c->args, c->ctor);
        return;
      }
      case StmtKind::New: {
        const auto* n = e->as<NewExpr>();
        visitCallArgs(n->args, n->ctor);
        return;
      }
      case StmtKind::Delete:
        visitExpr(e->as<DeleteExpr>()->operand, Mode::Read, 0);
        return;
      case StmtKind::Cast:
        visitExpr(e->as<CastExpr>()->operand, mode, extra);
        return;
      case StmtKind::Comma: {
        const auto* comma = e->as<CommaExpr>();
        visitExpr(comma->lhs, Mode::Read, 0);
        visitExpr(comma->rhs, mode, extra);
        return;
      }
      case StmtKind::SizeOf:
        return;  // unevaluated operand: no reads happen
      default:
        forEachChild(e, [&](const Stmt* c) {
          if (const auto* ce = dynamic_cast<const Expr*>(c))
            visitExpr(ce, Mode::Read, 0);
        });
        return;
    }
  };

  /// Expression in a value-discarding position: top-level assignments and
  /// increments skip the trailing lvalue read `assign`/`incdec` would
  /// otherwise emit for a consumed value.
  std::function<void(const Expr*)> discardValue = [&](const Expr* e) {
    if (e == nullptr) return;
    if (const auto* cast = e->as<CastExpr>()) {
      discardValue(cast->operand);
      return;
    }
    if (const auto* comma = e->as<CommaExpr>()) {
      discardValue(comma->lhs);
      discardValue(comma->rhs);
      return;
    }
    if (const auto* bin = e->as<BinaryExpr>(); bin != nullptr &&
                                               isAssignOp(bin->op)) {
      assign(bin, /*value_used=*/false);
      return;
    }
    if (const auto* un = e->as<UnaryExpr>();
        un != nullptr && (un->op == "++" || un->op == "--")) {
      incdec(un, /*value_used=*/false);
      return;
    }
    visitExpr(e, Mode::Read, 0);
  };

  std::function<void(const Stmt*)> visitStmt = [&](const Stmt* s) {
    if (s == nullptr) return;
    switch (s->kind()) {
      case StmtKind::Compound:
        for (const Stmt* c : s->as<CompoundStmt>()->body) visitStmt(c);
        return;
      case StmtKind::DeclStatement:
        for (const VarDecl* var : s->as<DeclStmt>()->vars) {
          for (const Expr* a : var->ctor_args) visitArg(a, nullptr, false);
          if (var->init != nullptr) visitExpr(var->init, Mode::Read, 0);
          if (var->name().empty()) continue;
          std::uint8_t flags = 0;
          if (const auto it = tracked.find(var); it != tracked.end())
            flags = it->second;
          const bool constructed = var->resolved_ctor != nullptr ||
                                   canonical(var->type) != nullptr &&
                                       canonical(var->type)->kind() ==
                                           TypeKind::Class;
          if (var->init == nullptr && var->ctor_args.empty() && !constructed)
            flags |= du::kUninit;
          if (var->init != nullptr && isNullConstant(var->init))
            flags |= du::kNullValue;
          event(pdb::DuOp::Def, flags, var->name(), var->location());
        }
        return;
      case StmtKind::ExprStatement:
        discardValue(s->as<ExprStmt>()->expr);
        return;
      case StmtKind::If: {
        const auto* iff = s->as<IfStmt>();
        visitExpr(iff->condition, Mode::Read, 0);
        marker("then", s->extent().begin);
        visitStmt(iff->then_branch);
        if (iff->else_branch != nullptr) {
          marker("else", iff->else_branch->extent().begin);
          visitStmt(iff->else_branch);
        }
        marker("endif", s->extent().end);
        return;
      }
      case StmtKind::While: {
        const auto* loop = s->as<WhileStmt>();
        marker("loop", s->extent().begin);
        visitExpr(loop->condition, Mode::Read, 0);
        marker("body", s->extent().begin);
        visitStmt(loop->body);
        marker("endloop", s->extent().end);
        return;
      }
      case StmtKind::DoWhile: {
        const auto* loop = s->as<DoWhileStmt>();
        marker("doloop", s->extent().begin);
        marker("body", s->extent().begin);
        visitStmt(loop->body);
        visitExpr(loop->condition, Mode::Read, 0);
        marker("endloop", s->extent().end);
        return;
      }
      case StmtKind::For: {
        const auto* loop = s->as<ForStmt>();
        visitStmt(loop->init);
        marker("loop", s->extent().begin);
        if (loop->condition != nullptr)
          visitExpr(loop->condition, Mode::Read, 0);
        marker("body", s->extent().begin);
        visitStmt(loop->body);
        if (loop->increment != nullptr) discardValue(loop->increment);
        marker("endloop", s->extent().end);
        return;
      }
      case StmtKind::Switch: {
        const auto* sw = s->as<SwitchStmt>();
        visitExpr(sw->condition, Mode::Read, 0);
        marker("switch", s->extent().begin);
        visitStmt(sw->body);
        marker("endswitch", s->extent().end);
        return;
      }
      case StmtKind::Case: {
        const auto* cs = s->as<CaseStmt>();
        marker("case", s->extent().begin);
        // Case values are constant expressions; no storage is read.
        visitStmt(cs->body);
        return;
      }
      case StmtKind::Default:
        marker("default", s->extent().begin);
        visitStmt(s->as<DefaultStmt>()->body);
        return;
      case StmtKind::Return: {
        const auto* ret = s->as<ReturnStmt>();
        if (ret->value != nullptr) visitExpr(ret->value, Mode::Read, 0);
        marker("ret", s->extent().begin);
        return;
      }
      case StmtKind::Break:
        marker("break", s->extent().begin);
        return;
      case StmtKind::Continue:
        marker("continue", s->extent().begin);
        return;
      case StmtKind::Goto:
      case StmtKind::Label:
        // Irregular control flow the CFG-lite does not model; analyses
        // see the marker and skip the routine.
        marker("irregular", s->extent().begin);
        if (const auto* label = s->as<LabelStmt>()) visitStmt(label->body);
        return;
      case StmtKind::Try: {
        const auto* tr = s->as<TryStmt>();
        marker("irregular", s->extent().begin);
        visitStmt(tr->body);
        for (const TryStmt::Handler& h : tr->handlers) {
          if (h.var != nullptr && !h.var->name().empty()) {
            std::uint8_t flags = 0;
            if (const auto it = tracked.find(h.var); it != tracked.end())
              flags = it->second;
            event(pdb::DuOp::Def, flags, h.var->name(), h.var->location());
          }
          visitStmt(h.body);
        }
        return;
      }
      case StmtKind::Null:
        return;
      default:
        // An expression in statement position.
        if (const auto* e = dynamic_cast<const Expr*>(s))
          visitExpr(e, Mode::Read, 0);
        return;
    }
  };

  // Parameters are defined on entry.
  for (const ParamDecl* p : fn->params) {
    if (p->name().empty()) continue;
    std::uint8_t flags = du::kParam;
    if (const auto it = tracked.find(p); it != tracked.end())
      flags |= it->second;
    event(pdb::DuOp::Def, flags, p->name(), p->location());
  }
  // Constructor initializers define members (and read their arguments).
  for (const auto& init : fn->ctor_inits) {
    for (const Expr* a : init.args) visitExpr(a, Mode::Read, 0);
    event(pdb::DuOp::Def, du::kMember, "this." + init.name, init.location);
  }
  visitStmt(fn->body);
}

void IlAnalyzer::emitNamespaces() {
  std::unordered_map<std::uint32_t, std::size_t> index;
  for (std::size_t i = 0; i < out_.namespaces().size(); ++i)
    index[out_.namespaces()[i].id] = i;
  for (const auto& [decl, id] : byId(namespace_ids_)) {
    {
      pdb::NamespaceItem& item = out_.namespaces()[index.at(id)];
      item.location = pos(decl->location());
      if (const auto* ns = decl->as<NamespaceDecl>()) {
        for (const Decl* member : ns->children()) {
          if (const auto it = routine_ids_.find(member); it != routine_ids_.end())
            item.members.push_back({pdb::ItemKind::Routine, it->second});
          else if (const auto ct = class_ids_.find(member); ct != class_ids_.end())
            item.members.push_back({pdb::ItemKind::Class, ct->second});
          else if (const auto nt = namespace_ids_.find(member);
                   nt != namespace_ids_.end())
            item.members.push_back({pdb::ItemKind::Namespace, nt->second});
          else if (const auto tt = template_ids_.find(member);
                   tt != template_ids_.end())
            item.members.push_back({pdb::ItemKind::Template, tt->second});
        }
      }
    }
  }
}

void IlAnalyzer::emitMacros() {
  for (const lex::MacroRecord& record : result_.macros) {
    pdb::MacroItem item;
    item.name = out_.own(record.name);
    item.location = pos(record.location);
    item.kind = record.kind == lex::MacroRecord::Kind::Define ? "def" : "undef";
    item.text = out_.own(record.text);
    out_.addMacro(std::move(item));
  }
}

}  // namespace pdt::ilanalyzer
