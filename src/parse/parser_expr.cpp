// Parser: statements and expressions. Bodies are parsed fully so the IL
// Analyzer can extract static call information, including calls hidden in
// object lifetimes (paper §3.1).
#include "parse/parser.h"

#include "support/text.h"

namespace pdt::parse {

using namespace ast;
using lex::Token;
using lex::TokenKind;

namespace {

int binaryPrecedence(std::string_view op) {
  if (op == "||") return 1;
  if (op == "&&") return 2;
  if (op == "|") return 3;
  if (op == "^") return 4;
  if (op == "&") return 5;
  if (op == "==" || op == "!=") return 6;
  if (op == "<" || op == ">" || op == "<=" || op == ">=") return 7;
  if (op == "<<" || op == ">>") return 8;
  if (op == "+" || op == "-") return 9;
  if (op == "*" || op == "/" || op == "%") return 10;
  if (op == ".*" || op == "->*") return 11;
  return 0;
}

bool isAssignOp(std::string_view op) {
  return op == "=" || op == "+=" || op == "-=" || op == "*=" || op == "/=" ||
         op == "%=" || op == "<<=" || op == ">>=" || op == "&=" || op == "^=" ||
         op == "|=";
}

}  // namespace

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

CompoundStmt* Parser::parseCompound() {
  auto* block = ctx_.create<CompoundStmt>();
  const SourceLocation begin = loc();
  expectPunct("{");
  sema_.pushScope(sema::ScopeKind::Block, nullptr);
  while (!cur().isEnd() && !cur().isPunct("}")) {
    const std::size_t before = pos_;
    Stmt* s = parseStmt();
    if (s != nullptr) block->body.push_back(s);
    if (pos_ == before) {
      error(concat({"unexpected token '", cur().text, "' in block"}));
      advance();
    }
  }
  const SourceLocation end = loc();
  expectPunct("}");
  sema_.popScope();
  block->setExtent({begin, end});
  return block;
}

Stmt* Parser::parseStmt() {
  const SourceLocation begin = loc();

  if (cur().isPunct("{")) return parseCompound();
  if (cur().isPunct(";")) {
    advance();
    auto* s = ctx_.create<NullStmt>();
    s->setExtent({begin, begin});
    return s;
  }
  if (cur().isKeyword("if")) {
    advance();
    auto* s = ctx_.create<IfStmt>();
    expectPunct("(");
    s->condition = parseExpr();
    expectPunct(")");
    s->then_branch = parseStmt();
    if (consumeKeyword("else")) s->else_branch = parseStmt();
    s->setExtent({begin, loc()});
    return s;
  }
  if (cur().isKeyword("while")) {
    advance();
    auto* s = ctx_.create<WhileStmt>();
    expectPunct("(");
    s->condition = parseExpr();
    expectPunct(")");
    s->body = parseStmt();
    s->setExtent({begin, loc()});
    return s;
  }
  if (cur().isKeyword("do")) {
    advance();
    auto* s = ctx_.create<DoWhileStmt>();
    s->body = parseStmt();
    if (consumeKeyword("while")) {
      expectPunct("(");
      s->condition = parseExpr();
      expectPunct(")");
    } else {
      error("expected 'while' after do-body");
    }
    expectPunct(";");
    s->setExtent({begin, loc()});
    return s;
  }
  if (cur().isKeyword("for")) {
    advance();
    auto* s = ctx_.create<ForStmt>();
    sema_.pushScope(sema::ScopeKind::Block, nullptr);
    expectPunct("(");
    if (!consumePunct(";")) s->init = parseDeclStmtOrExprStmt();
    if (!cur().isPunct(";")) s->condition = parseExpr();
    expectPunct(";");
    if (!cur().isPunct(")")) s->increment = parseExpr();
    expectPunct(")");
    s->body = parseStmt();
    sema_.popScope();
    s->setExtent({begin, loc()});
    return s;
  }
  if (cur().isKeyword("switch")) {
    advance();
    auto* s = ctx_.create<SwitchStmt>();
    expectPunct("(");
    s->condition = parseExpr();
    expectPunct(")");
    s->body = parseStmt();
    s->setExtent({begin, loc()});
    return s;
  }
  if (cur().isKeyword("case")) {
    advance();
    auto* s = ctx_.create<CaseStmt>();
    s->value = parseConditional();
    expectPunct(":");
    if (!cur().isPunct("}") && !cur().isKeyword("case") &&
        !cur().isKeyword("default"))
      s->body = parseStmt();
    s->setExtent({begin, loc()});
    return s;
  }
  if (cur().isKeyword("default") && peek().isPunct(":")) {
    advance();
    advance();
    auto* s = ctx_.create<DefaultStmt>();
    if (!cur().isPunct("}") && !cur().isKeyword("case")) s->body = parseStmt();
    s->setExtent({begin, loc()});
    return s;
  }
  if (cur().isKeyword("return")) {
    advance();
    auto* s = ctx_.create<ReturnStmt>();
    if (!cur().isPunct(";")) s->value = parseExpr();
    expectPunct(";");
    s->setExtent({begin, loc()});
    return s;
  }
  if (cur().isKeyword("break")) {
    advance();
    expectPunct(";");
    auto* s = ctx_.create<BreakStmt>();
    s->setExtent({begin, begin});
    return s;
  }
  if (cur().isKeyword("continue")) {
    advance();
    expectPunct(";");
    auto* s = ctx_.create<ContinueStmt>();
    s->setExtent({begin, begin});
    return s;
  }
  if (cur().isKeyword("goto")) {
    advance();
    auto* s = ctx_.create<GotoStmt>();
    if (cur().is(TokenKind::Identifier)) {
      s->label = cur().text;
      advance();
    }
    expectPunct(";");
    s->setExtent({begin, begin});
    return s;
  }
  if (cur().isKeyword("try")) {
    advance();
    auto* s = ctx_.create<TryStmt>();
    s->body = parseCompound();
    while (cur().isKeyword("catch")) {
      advance();
      TryStmt::Handler handler;
      expectPunct("(");
      sema_.pushScope(sema::ScopeKind::Block, nullptr);
      if (consumePunct("...")) {
        // catch-all
      } else {
        handler.exception_type = parseTypeName();
        if (cur().is(TokenKind::Identifier)) {
          auto* var = ctx_.create<VarDecl>();
          var->setName(std::string(cur().text));
          var->setLocation(loc());
          var->type = handler.exception_type;
          handler.var = var;
          sema_.declareName(var->name(), var);
          advance();
        }
      }
      expectPunct(")");
      handler.body = parseCompound();
      sema_.popScope();
      s->handlers.push_back(handler);
    }
    s->setExtent({begin, loc()});
    return s;
  }
  // Label: "name: stmt".
  if (cur().is(TokenKind::Identifier) && peek().isPunct(":") &&
      !peek(1).isPunct("::")) {
    // Only treat as a label when the name is not a type (bit-fields and
    // ternaries don't appear at statement start in the subset).
    if (!sema_.isTypeName(cur().text)) {
      auto* s = ctx_.create<LabelStmt>();
      s->label = cur().text;
      advance();
      advance();
      s->body = parseStmt();
      s->setExtent({begin, loc()});
      return s;
    }
  }
  return parseDeclStmtOrExprStmt();
}

Stmt* Parser::parseDeclStmtOrExprStmt() {
  const SourceLocation begin = loc();

  bool is_decl = false;
  if (startsDeclSpecs()) {
    is_decl = true;
  } else if (cur().is(TokenKind::Identifier) || cur().isPunct("::")) {
    // Probe: does a type parse succeed and leave us at a declarator name?
    const std::size_t save = pos_;
    const std::size_t diags_before = diags_.all().size();
    const Type* probe = parseTypeName();
    if (probe != nullptr && cur().is(TokenKind::Identifier)) is_decl = true;
    pos_ = save;
    (void)diags_before;
  }

  if (!is_decl) {
    auto* s = ctx_.create<ExprStmt>();
    s->expr = parseExpr();
    expectPunct(";");
    s->setExtent({begin, loc()});
    return s;
  }

  // Declaration statement.
  DeclSpecs specs = parseDeclSpecs(/*allow_no_type=*/false);
  if (specs.type == nullptr) {
    error("expected type in declaration");
    skipToRecovery();
    return nullptr;
  }
  auto* ds = ctx_.create<DeclStmt>();
  while (true) {
    const Type* type = parsePointerRefSuffixes(specs.type);
    if (!cur().is(TokenKind::Identifier)) {
      error("expected variable name");
      skipToRecovery();
      break;
    }
    auto* var = ctx_.create<VarDecl>();
    var->setName(std::string(cur().text));
    var->setLocation(loc());
    var->storage = specs.storage;
    advance();
    // Array suffixes.
    while (cur().isPunct("[")) {
      advance();
      std::int64_t size = -1;
      if (cur().is(TokenKind::IntLiteral)) {
        size = std::stoll(std::string(cur().text), nullptr, 0);
        advance();
      } else {
        while (!cur().isEnd() && !cur().isPunct("]")) advance();
      }
      expectPunct("]");
      type = ctx_.arrayOf(type, size);
    }
    var->type = type;
    if (consumePunct("=")) {
      var->init = parseAssignment();
    } else if (cur().isPunct("(")) {
      advance();
      if (!cur().isPunct(")")) {
        while (true) {
          var->ctor_args.push_back(parseAssignment());
          if (!consumePunct(",")) break;
        }
      }
      expectPunct(")");
    }
    sema_.declareName(var->name(), var);
    ds->vars.push_back(var);
    if (!consumePunct(",")) break;
  }
  expectPunct(";");
  ds->setExtent({begin, loc()});
  return ds;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Expr* Parser::parseExpr() {
  Expr* e = parseAssignment();
  while (cur().isPunct(",")) {
    advance();
    auto* comma = ctx_.create<CommaExpr>();
    comma->lhs = e;
    comma->rhs = parseAssignment();
    comma->setExtent(e != nullptr ? e->extent() : SourceExtent{});
    e = comma;
  }
  return e;
}

Expr* Parser::parseAssignment() {
  const SourceLocation begin = loc();
  if (cur().isKeyword("throw")) {
    advance();
    auto* t = ctx_.create<ThrowExpr>();
    if (!cur().isPunct(";") && !cur().isPunct(")") && !cur().isPunct(",")) {
      t->operand = parseAssignment();
    }
    t->setExtent({begin, loc()});
    return t;
  }
  Expr* lhs = parseConditional();
  if (cur().is(TokenKind::Punct) && isAssignOp(cur().text)) {
    auto* bin = ctx_.create<BinaryExpr>();
    bin->op = cur().text;
    advance();
    bin->lhs = lhs;
    bin->rhs = parseAssignment();  // right-associative
    bin->setExtent({begin, loc()});
    return bin;
  }
  return lhs;
}

Expr* Parser::parseConditional() {
  const SourceLocation begin = loc();
  Expr* cond = parseBinary(1);
  if (!cur().isPunct("?")) return cond;
  advance();
  auto* e = ctx_.create<ConditionalExpr>();
  e->condition = cond;
  e->true_value = parseAssignment();
  expectPunct(":");
  e->false_value = parseAssignment();
  e->setExtent({begin, loc()});
  return e;
}

Expr* Parser::parseBinary(int min_prec) {
  const SourceLocation begin = loc();
  Expr* lhs = parseUnary();
  while (cur().is(TokenKind::Punct)) {
    const int prec = binaryPrecedence(cur().text);
    if (prec == 0 || prec < min_prec) break;
    auto* bin = ctx_.create<BinaryExpr>();
    bin->op = cur().text;
    advance();
    bin->lhs = lhs;
    bin->rhs = parseBinary(prec + 1);
    bin->setExtent({begin, loc()});
    lhs = bin;
  }
  return lhs;
}

Expr* Parser::parseUnary() {
  const SourceLocation begin = loc();
  static constexpr std::string_view kPrefix[] = {"!", "~", "+", "-",
                                                 "*", "&", "++", "--"};
  for (const auto op : kPrefix) {
    if (cur().isPunct(op)) {
      advance();
      auto* u = ctx_.create<UnaryExpr>();
      u->op = std::string(op);
      u->operand = parseUnary();
      u->setExtent({begin, loc()});
      return u;
    }
  }
  if (cur().isKeyword("new")) {
    advance();
    auto* e = ctx_.create<NewExpr>();
    const Type* type = parseTypeSpecifier();
    if (type == nullptr) {
      error("expected type after 'new'");
      type = ctx_.intType();
    }
    // Pointer suffixes before the initializer.
    while (cur().isPunct("*")) {
      advance();
      type = ctx_.pointerTo(type);
    }
    if (cur().isPunct("[")) {
      e->is_array = true;
      advance();
      if (!cur().isPunct("]")) parseAssignment();  // size expression
      expectPunct("]");
    } else if (cur().isPunct("(")) {
      advance();
      if (!cur().isPunct(")")) {
        while (true) {
          e->args.push_back(parseAssignment());
          if (!consumePunct(",")) break;
        }
      }
      expectPunct(")");
    }
    e->allocated = type;
    e->setExtent({begin, loc()});
    return e;
  }
  if (cur().isKeyword("delete")) {
    advance();
    auto* e = ctx_.create<DeleteExpr>();
    if (cur().isPunct("[") && peek().isPunct("]")) {
      e->is_array = true;
      advance();
      advance();
    }
    e->operand = parseUnary();
    e->setExtent({begin, loc()});
    return e;
  }
  if (cur().isKeyword("sizeof")) {
    advance();
    auto* e = ctx_.create<SizeOfExpr>();
    if (cur().isPunct("(")) {
      const std::size_t save = pos_;
      advance();
      const Type* t = parseTypeName();
      if (t != nullptr && cur().isPunct(")")) {
        advance();
        e->type_operand = t;
        e->setExtent({begin, loc()});
        return e;
      }
      pos_ = save;
    }
    e->expr_operand = parseUnary();
    e->setExtent({begin, loc()});
    return e;
  }
  return parsePostfix();
}

std::vector<Expr*> Parser::parseCallArgs() {
  std::vector<Expr*> args;
  expectPunct("(");
  if (consumePunct(")")) return args;
  while (true) {
    args.push_back(parseAssignment());
    if (!consumePunct(",")) break;
  }
  expectPunct(")");
  return args;
}

Expr* Parser::parsePostfix() {
  const SourceLocation begin = loc();
  Expr* e = parsePrimary();
  while (true) {
    if (cur().isPunct("(")) {
      auto* call = ctx_.create<CallExpr>();
      call->callee = e;
      call->call_location = e != nullptr ? e->extent().begin : begin;
      call->args = parseCallArgs();
      call->setExtent({begin, loc()});
      e = call;
      continue;
    }
    if (cur().isPunct("[")) {
      advance();
      auto* idx = ctx_.create<IndexExpr>();
      idx->base = e;
      idx->index = parseExpr();
      expectPunct("]");
      idx->setExtent({begin, loc()});
      e = idx;
      continue;
    }
    if (cur().isPunct(".") || cur().isPunct("->")) {
      const bool arrow = cur().isPunct("->");
      advance();
      auto* member = ctx_.create<MemberExpr>();
      member->base = e;
      member->is_arrow = arrow;
      if (cur().isPunct("~")) {  // explicit destructor call
        advance();
        member->member = concat({"~", cur().text});
        advance();
      } else if (cur().is(TokenKind::Identifier) ||
                 cur().isKeyword("operator")) {
        if (cur().isKeyword("operator")) {
          advance();
          member->member = concat({"operator", cur().text});
          advance();
        } else {
          member->member = cur().text;
          advance();
        }
      } else {
        error("expected member name after '" + std::string(arrow ? "->" : ".") +
              "'");
      }
      member->setExtent({begin, loc()});
      e = member;
      continue;
    }
    if (cur().isPunct("++") || cur().isPunct("--")) {
      auto* u = ctx_.create<UnaryExpr>();
      u->op = cur().text;
      u->is_postfix = true;
      u->operand = e;
      advance();
      u->setExtent({begin, loc()});
      e = u;
      continue;
    }
    break;
  }
  return e;
}

Expr* Parser::parsePrimary() {
  const SourceLocation begin = loc();
  const Token& t = cur();

  if (t.is(TokenKind::IntLiteral)) {
    auto* e = ctx_.create<IntLitExpr>();
    e->spelling = t.text;
    std::string digits(t.text);
    while (!digits.empty() && std::isalpha(static_cast<unsigned char>(digits.back())))
      digits.pop_back();
    e->value = digits.empty() ? 0 : std::stoll(digits, nullptr, 0);
    advance();
    e->setExtent({begin, begin});
    return e;
  }
  if (t.is(TokenKind::FloatLiteral)) {
    auto* e = ctx_.create<FloatLitExpr>();
    e->spelling = t.text;
    std::string digits(t.text);
    while (!digits.empty() && std::isalpha(static_cast<unsigned char>(digits.back())) &&
           digits.back() != 'e' && digits.back() != 'E')
      digits.pop_back();
    e->value = digits.empty() ? 0.0 : std::stod(digits);
    advance();
    e->setExtent({begin, begin});
    return e;
  }
  if (t.is(TokenKind::CharLiteral)) {
    auto* e = ctx_.create<CharLitExpr>();
    e->spelling = t.text;
    advance();
    e->setExtent({begin, begin});
    return e;
  }
  if (t.is(TokenKind::StringLiteral)) {
    auto* e = ctx_.create<StringLitExpr>();
    e->spelling = t.text;
    advance();
    // Adjacent string literals concatenate.
    while (cur().is(TokenKind::StringLiteral)) {
      e->spelling += cur().text;
      advance();
    }
    e->setExtent({begin, begin});
    return e;
  }
  if (t.isKeyword("true") || t.isKeyword("false")) {
    auto* e = ctx_.create<BoolLitExpr>();
    e->value = t.isKeyword("true");
    advance();
    e->setExtent({begin, begin});
    return e;
  }
  if (t.isKeyword("this")) {
    auto* e = ctx_.create<ThisExpr>();
    advance();
    e->setExtent({begin, begin});
    return e;
  }
  if (t.isPunct("(")) {
    // C-style cast or parenthesized expression.
    const std::size_t save = pos_;
    advance();
    const Type* cast_type = parseTypeName();
    if (cast_type != nullptr && cur().isPunct(")")) {
      const Token& after = peek();
      const bool cast_follows =
          after.is(TokenKind::Identifier) || after.is(TokenKind::IntLiteral) ||
          after.is(TokenKind::FloatLiteral) || after.is(TokenKind::CharLiteral) ||
          after.is(TokenKind::StringLiteral) || after.isPunct("(") ||
          after.isKeyword("this") || after.isKeyword("true") ||
          after.isKeyword("false") || after.isKeyword("new") ||
          after.isKeyword("sizeof") || after.isPunct("!") || after.isPunct("~") ||
          after.isPunct("*") || after.isPunct("&") || after.isPunct("-") ||
          after.isPunct("+");
      if (cast_follows) {
        advance();  // ')'
        auto* e = ctx_.create<CastExpr>();
        e->cast_kind = "c-style";
        e->target = cast_type;
        e->operand = parseUnary();
        e->setExtent({begin, loc()});
        return e;
      }
    }
    pos_ = save;
    advance();  // '('
    Expr* inner = parseExpr();
    expectPunct(")");
    if (inner != nullptr) inner->setExtent({begin, loc()});
    return inner;
  }
  // Named casts (lex as identifiers: not in the keyword set).
  if (t.is(TokenKind::Identifier) &&
      (t.text == "static_cast" || t.text == "dynamic_cast" ||
       t.text == "reinterpret_cast" || t.text == "const_cast")) {
    auto* e = ctx_.create<CastExpr>();
    e->cast_kind = t.text;
    advance();
    expectPunct("<");
    e->target = parseTypeName();
    if (cur().isPunct(">>")) splitRightShift();
    expectPunct(">");
    expectPunct("(");
    e->operand = parseExpr();
    expectPunct(")");
    e->setExtent({begin, loc()});
    return e;
  }
  if (t.isKeyword("typeid")) {
    advance();
    auto* e = ctx_.create<CallExpr>();  // modeled as an opaque call
    auto* ref = ctx_.create<DeclRefExpr>();
    ref->name = "typeid";
    ref->setExtent({begin, begin});
    e->callee = ref;
    e->call_location = begin;
    if (cur().isPunct("(")) {
      advance();
      const std::size_t save = pos_;
      const Type* ty = parseTypeName();
      if (ty == nullptr || !cur().isPunct(")")) {
        pos_ = save;
        e->args.push_back(parseExpr());
      }
      expectPunct(")");
    }
    e->setExtent({begin, loc()});
    return e;
  }

  if (t.is(TokenKind::Identifier) || t.isPunct("::") ||
      t.isKeyword("operator")) {
    // Type-name followed by '(' is an explicit construction: Stack<int>(),
    // Overflow(), double(x).
    {
      const std::size_t save = pos_;
      const Type* type = parseTypeName();
      if (type != nullptr && cur().isPunct("(") &&
          !type->as<ReferenceType>()) {
        auto* e = ctx_.create<ConstructExpr>();
        e->constructed = type;
        e->args = parseCallArgs();
        e->setExtent({begin, loc()});
        return e;
      }
      pos_ = save;
    }
    return [&]() -> Expr* {
      // Id-expression with optional qualification and template arguments.
      const Decl* qualifier_ns = nullptr;
      const Type* qualifier_type = nullptr;
      DeclContext* search = nullptr;
      if (consumePunct("::")) search = ctx_.translationUnit();

      while (true) {
        if (!cur().is(TokenKind::Identifier)) {
          if (cur().isKeyword("operator")) {
            auto* ref = ctx_.create<DeclRefExpr>();
            advance();
            ref->name = concat({"operator", cur().text});
            advance();
            ref->qualifier_ns = qualifier_ns;
            ref->qualifier_type = qualifier_type;
            ref->setExtent({begin, loc()});
            return ref;
          }
          error("expected identifier");
          auto* ref = ctx_.create<DeclRefExpr>();
          ref->setExtent({begin, begin});
          return ref;
        }
        const std::string name(cur().text);
        const SourceLocation name_loc = loc();
        advance();

        // Candidate resolution for qualifier/template decisions.
        std::vector<Decl*> found =
            search == nullptr ? sema_.lookupUnqualified(name)
                              : sema::Sema::lookupInContext(search, name);
        TemplateDecl* class_template = nullptr;
        TemplateDecl* func_template = nullptr;
        for (Decl* d : found) {
          if (auto* td = d->as<TemplateDecl>()) {
            if (td->tkind == TemplateKind::Class && class_template == nullptr)
              class_template = td;
            // Free and member function templates both take explicit args.
            if (td->tkind != TemplateKind::Class && func_template == nullptr)
              func_template = td;
          }
        }

        if (cur().isPunct("<") && class_template != nullptr) {
          const std::size_t save = pos_;
          auto args = parseTemplateArgs();
          if (args && cur().isPunct("::")) {
            advance();
            bool dependent = false;
            for (const Type* a : *args) dependent = dependent || a->isDependent();
            if (dependent) {
              qualifier_type = ctx_.templateSpecType(class_template, *args);
              search = nullptr;
            } else {
              ClassDecl* inst = sema_.instantiateClassTemplate(
                  class_template, *args, name_loc);
              if (inst != nullptr) {
                qualifier_type = ctx_.classType(inst);
                search = inst;
              }
            }
            qualifier_ns = nullptr;
            continue;
          }
          pos_ = save;  // '<' was a comparison after all
        }
        if (cur().isPunct("<") && func_template != nullptr) {
          const std::size_t save = pos_;
          auto args = parseTemplateArgs();
          if (args) {
            auto* ref = ctx_.create<DeclRefExpr>();
            ref->name = name;
            ref->qualifier_ns = qualifier_ns;
            ref->qualifier_type = qualifier_type;
            ref->explicit_targs = *args;
            ref->setExtent({begin, name_loc});
            return ref;
          }
          pos_ = save;
        }
        if (cur().isPunct("::")) {
          // Namespace or class qualifier.
          Decl* next_search = nullptr;
          for (Decl* d : found) {
            if (d->as<NamespaceDecl>() != nullptr ||
                d->as<ClassDecl>() != nullptr) {
              next_search = d;
              break;
            }
            if (auto* alias = d->as<NamespaceAliasDecl>()) {
              next_search = alias->target;
              break;
            }
          }
          if (next_search != nullptr) {
            advance();
            if (auto* ns = next_search->as<NamespaceDecl>()) {
              search = ns;
              qualifier_ns = ns;
              qualifier_type = nullptr;
            } else if (auto* cls = next_search->as<ClassDecl>()) {
              search = cls;
              qualifier_type = ctx_.classType(cls);
              qualifier_ns = nullptr;
            }
            continue;
          }
          // "A::b" where A is unknown: swallow the qualifier politely.
          advance();
          continue;
        }
        auto* ref = ctx_.create<DeclRefExpr>();
        ref->name = name;
        ref->qualifier_ns = qualifier_ns;
        ref->qualifier_type = qualifier_type;
        ref->setExtent({begin, name_loc});
        return ref;
      }
    }();
  }

  error(concat({"expected expression, found '", t.text, "'"}));
  advance();
  auto* e = ctx_.create<IntLitExpr>();
  e->setExtent({begin, begin});
  return e;
}

}  // namespace pdt::parse
