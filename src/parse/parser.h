// Recursive-descent parser for PDT-C++ (DESIGN.md §3).
//
// The parser interleaves with Sema the way real C++ frontends must: name
// classification (is this identifier a type? a template?) consults the
// scope stack while parsing. It builds the IL tree; semantic resolution of
// bodies and template instantiation happen in Sema::finalize().
//
// Inline member function bodies are delay-parsed until their class is
// complete (so members may reference members declared later), using the
// parser's random-access token buffer.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ast/context.h"
#include "lex/token.h"
#include "sema/sema.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"

namespace pdt::parse {

class Parser {
 public:
  Parser(sema::Sema& sema, SourceManager& sm, DiagnosticEngine& diags,
         std::vector<lex::Token> tokens);

  /// Parses the whole token stream into the Sema's translation unit.
  void parseTranslationUnit();

 private:
  using Token = lex::Token;

  // -- token plumbing -----------------------------------------------------
  [[nodiscard]] const Token& cur() const { return toks_[pos_]; }
  [[nodiscard]] const Token& peek(std::size_t ahead = 1) const;
  void advance() {
    if (pos_ + 1 < toks_.size()) ++pos_;
  }
  bool consumePunct(std::string_view p);
  bool consumeKeyword(std::string_view k);
  bool expectPunct(std::string_view p);
  [[nodiscard]] SourceLocation loc() const { return cur().location; }
  void error(const std::string& message);
  void skipToRecovery();       // skip to ';' or matching '}' at depth 0
  void skipBalanced(std::string_view open, std::string_view close);
  /// Splits a '>>' token into two '>' (nested template argument lists).
  void splitRightShift();

  // -- declarations ----------------------------------------------------------
  void parseTopLevel();
  void parseDeclarationOrDefinition(bool in_class, ast::AccessKind access);
  void parseNamespace();
  void parseUsing();
  void parseTemplate();
  void parseExternBlock();

  struct DeclSpecs {
    const ast::Type* type = nullptr;
    bool is_virtual = false;
    bool is_static = false;
    bool is_inline = false;
    bool is_explicit = false;
    bool is_friend = false;
    bool is_typedef = false;
    bool is_mutable = false;
    ast::StorageClass storage = ast::StorageClass::None;
    bool saw_type = false;
  };
  /// Parses decl-specifiers + the base type. `allow_no_type` supports
  /// constructors/destructors.
  DeclSpecs parseDeclSpecs(bool allow_no_type);

  struct Declarator {
    std::string name;
    SourceLocation name_loc;
    const ast::Type* type = nullptr;          // full declarator type
    bool is_function = false;
    std::vector<ast::ParamDecl*> params;
    bool is_const_member = false;
    bool has_ellipsis = false;
    std::vector<const ast::Type*> exception_specs;
    bool has_exception_spec = false;
    // Qualifier for out-of-line members: "Stack<Object>::push".
    ast::ClassDecl* qualifier_class = nullptr;      // resolved concrete class
    ast::TemplateDecl* qualifier_template = nullptr;  // class template pattern
    bool is_ctor = false;
    bool is_dtor = false;
    bool is_operator = false;
    bool is_conversion = false;
    const ast::Type* conversion_type = nullptr;
  };
  /// Parses one declarator on top of `base`.
  Declarator parseDeclarator(const ast::Type* base, bool allow_abstract);
  std::vector<ast::ParamDecl*> parseParamList(bool& has_ellipsis);

  void parseClass(const DeclSpecs& specs, ast::TemplateDecl* enclosing_template,
                  bool is_specialization,
                  std::vector<const ast::Type*> spec_args);
  void parseClassBody(ast::ClassDecl* cls);
  void parseEnum(bool in_class, ast::AccessKind access);
  void parseTypedef(const DeclSpecs& specs, bool in_class, ast::AccessKind access);
  void parseFriend(ast::ClassDecl* cls);
  /// Member function template of a non-template class (TE_MEMFUNC).
  void parseMemberTemplate(ast::ClassDecl* cls, ast::AccessKind access);

  /// Continues a declaration after specs: declarators, function bodies.
  void parseInitDeclarators(const DeclSpecs& specs, bool in_class,
                            ast::AccessKind access,
                            ast::TemplateDecl* enclosing_template);

  ast::FunctionDecl* buildFunction(const DeclSpecs& specs, Declarator& d,
                                   ast::AccessKind access);
  void parseFunctionRest(ast::FunctionDecl* fn, bool is_dependent_body,
                         bool delay_body);
  void parseCtorInitializers(ast::FunctionDecl* fn);

  // -- types -----------------------------------------------------------------
  /// Parses a type-specifier (builtin combos or named type), or null.
  const ast::Type* parseTypeSpecifier();
  /// Full type for casts/template args: specs + ptr/ref suffixes.
  const ast::Type* parseTypeName();
  const ast::Type* parsePointerRefSuffixes(const ast::Type* base);
  /// Named type: qualified id with optional template arguments.
  const ast::Type* parseNamedType();
  std::optional<std::vector<const ast::Type*>> parseTemplateArgs();
  /// True when the upcoming tokens start a type.
  [[nodiscard]] bool startsType() const;
  [[nodiscard]] bool startsDeclSpecs() const;

  // -- template helpers --------------------------------------------------------
  std::vector<ast::TemplateParamDecl*> parseTemplateParams();
  void parseTemplateEntity(std::vector<ast::TemplateParamDecl*> params,
                           SourceLocation template_loc,
                           std::size_t template_index);
  void parseExplicitSpecialization(SourceLocation template_loc);
  void parseExplicitInstantiation(SourceLocation template_loc);
  /// Captures template text from token `start` to current (exclusive).
  std::string captureText(std::size_t start, std::size_t end) const;

  // -- statements / expressions (parser_expr.cpp) -------------------------------
  ast::Stmt* parseStmt();
  ast::CompoundStmt* parseCompound();
  ast::Stmt* parseDeclStmtOrExprStmt();
  ast::Expr* parseExpr();
  ast::Expr* parseAssignment();
  ast::Expr* parseConditional();
  ast::Expr* parseBinary(int min_prec);
  ast::Expr* parseUnary();
  ast::Expr* parsePostfix();
  ast::Expr* parsePrimary();
  std::vector<ast::Expr*> parseCallArgs();

  /// Delayed inline member function bodies.
  struct DelayedBody {
    ast::FunctionDecl* fn = nullptr;
    std::size_t token_index = 0;  // at '{' or ':' (ctor-inits)
    bool is_dependent = false;    // member of a class template pattern
  };
  void parseDelayedBodies(ast::ClassDecl* cls, std::vector<DelayedBody> bodies);

  /// True when template parameters are in scope (dependent context).
  [[nodiscard]] bool inTemplate() const { return template_depth_ > 0; }

  sema::Sema& sema_;
  ast::AstContext& ctx_;
  SourceManager& sm_;
  DiagnosticEngine& diags_;
  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  int template_depth_ = 0;
  ast::Linkage current_linkage_ = ast::Linkage::Cxx;
  std::vector<DelayedBody>* delayed_sink_ = nullptr;  // set inside class bodies
};

}  // namespace pdt::parse
