// Parser: declarations, classes, templates. Statements and expressions
// live in parser_expr.cpp.
#include "parse/parser.h"

#include <cassert>

#include "support/text.h"

namespace pdt::parse {

using namespace ast;
using lex::Token;
using lex::TokenKind;

Parser::Parser(sema::Sema& sema, SourceManager& sm, DiagnosticEngine& diags,
               std::vector<Token> tokens)
    : sema_(sema), ctx_(sema.context()), sm_(sm), diags_(diags),
      toks_(std::move(tokens)) {
  if (toks_.empty() || !toks_.back().isEnd()) {
    Token end;
    end.kind = TokenKind::End;
    if (!toks_.empty()) end.location = toks_.back().location;
    toks_.push_back(end);
  }
}

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t i = pos_ + ahead;
  return i < toks_.size() ? toks_[i] : toks_.back();
}

bool Parser::consumePunct(std::string_view p) {
  if (cur().isPunct(p)) {
    advance();
    return true;
  }
  return false;
}

bool Parser::consumeKeyword(std::string_view k) {
  if (cur().isKeyword(k)) {
    advance();
    return true;
  }
  return false;
}

bool Parser::expectPunct(std::string_view p) {
  if (consumePunct(p)) return true;
  error(concat({"expected '", p, "' before '", cur().text, "'"}));
  return false;
}

void Parser::error(const std::string& message) {
  diags_.error(loc(), message);
}

void Parser::skipToRecovery() {
  int depth = 0;
  while (!cur().isEnd()) {
    if (cur().isPunct("{")) {
      ++depth;
    } else if (cur().isPunct("}")) {
      if (depth == 0) return;  // let the enclosing construct see it
      --depth;
    } else if (cur().isPunct(";") && depth == 0) {
      advance();
      return;
    }
    advance();
  }
}

void Parser::skipBalanced(std::string_view open, std::string_view close) {
  int depth = 0;
  while (!cur().isEnd()) {
    if (cur().isPunct(open)) {
      ++depth;
    } else if (cur().isPunct(close)) {
      if (--depth == 0) {
        advance();
        return;
      }
    }
    advance();
  }
}

void Parser::splitRightShift() {
  assert(cur().isPunct(">>"));
  Token first = cur();
  first.text = ">";
  Token second = first;
  second.location.column += 1;
  toks_[pos_] = first;
  toks_.insert(toks_.begin() + static_cast<std::ptrdiff_t>(pos_) + 1, second);
}

std::string Parser::captureText(std::size_t start, std::size_t end) const {
  std::string out;
  for (std::size_t i = start; i < end && i < toks_.size(); ++i) {
    if (!out.empty() && toks_[i].leading_space) out.push_back(' ');
    out += toks_[i].text;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

void Parser::parseTranslationUnit() {
  while (!cur().isEnd()) {
    const std::size_t before = pos_;
    parseTopLevel();
    if (pos_ == before) {
      error(concat({"unexpected token '", cur().text, "' at file scope"}));
      advance();
    }
  }
}

void Parser::parseTopLevel() {
  if (cur().isPunct(";")) {
    advance();
    return;
  }
  if (cur().isKeyword("namespace")) {
    parseNamespace();
    return;
  }
  if (cur().isKeyword("using")) {
    parseUsing();
    return;
  }
  if (cur().isKeyword("template")) {
    parseTemplate();
    return;
  }
  if (cur().isKeyword("extern") && peek().is(TokenKind::StringLiteral)) {
    parseExternBlock();
    return;
  }
  parseDeclarationOrDefinition(/*in_class=*/false, AccessKind::None);
}

void Parser::parseNamespace() {
  const SourceLocation ns_loc = loc();
  advance();  // namespace
  if (cur().isPunct("{")) {  // anonymous namespace: parse contents inline
    advance();
    while (!cur().isEnd() && !cur().isPunct("}")) parseTopLevel();
    expectPunct("}");
    return;
  }
  if (!cur().is(TokenKind::Identifier)) {
    error("expected namespace name");
    skipToRecovery();
    return;
  }
  const std::string name(cur().text);
  const SourceLocation name_loc = loc();
  advance();

  if (consumePunct("=")) {  // namespace alias
    auto* alias = ctx_.create<NamespaceAliasDecl>();
    alias->setName(name);
    alias->setLocation(name_loc);
    // Resolve target (possibly qualified).
    NamespaceDecl* target = nullptr;
    DeclContext* search = nullptr;
    while (cur().is(TokenKind::Identifier)) {
      const std::string seg(cur().text);
      advance();
      std::vector<Decl*> found = search == nullptr
                                     ? sema_.lookupUnqualified(seg)
                                     : sema::Sema::lookupInContext(search, seg);
      target = nullptr;
      for (Decl* d : found) {
        if (auto* ns = d->as<NamespaceDecl>()) {
          target = ns;
          break;
        }
        if (auto* al = d->as<NamespaceAliasDecl>()) {
          target = al->target;
          break;
        }
      }
      if (target == nullptr || !consumePunct("::")) break;
      search = target;
    }
    alias->target = target;
    if (target == nullptr) error("unknown namespace in alias '" + name + "'");
    sema_.declare(alias);
    expectPunct(";");
    return;
  }

  // Re-open an existing namespace of the same name in this context.
  NamespaceDecl* ns = nullptr;
  if (DeclContext* ctx = sema_.currentContext()) {
    for (Decl* d : ctx->lookup(name)) {
      if (auto* existing = d->as<NamespaceDecl>()) {
        ns = existing;
        break;
      }
    }
  }
  if (ns == nullptr) {
    ns = ctx_.create<NamespaceDecl>();
    ns->setName(name);
    ns->setLocation(name_loc);
    ns->setHeaderExtent({ns_loc, name_loc});
    sema_.declare(ns);
  }
  sema_.pushScope(sema::ScopeKind::Namespace, ns);
  expectPunct("{");
  while (!cur().isEnd() && !cur().isPunct("}")) parseTopLevel();
  expectPunct("}");
  sema_.popScope();
}

void Parser::parseUsing() {
  advance();  // using
  if (consumeKeyword("namespace")) {
    // using namespace A::B;
    NamespaceDecl* target = nullptr;
    DeclContext* search = nullptr;
    while (cur().is(TokenKind::Identifier)) {
      const std::string seg(cur().text);
      advance();
      std::vector<Decl*> found = search == nullptr
                                     ? sema_.lookupUnqualified(seg)
                                     : sema::Sema::lookupInContext(search, seg);
      target = nullptr;
      for (Decl* d : found) {
        if (auto* ns = d->as<NamespaceDecl>()) {
          target = ns;
          break;
        }
        if (auto* al = d->as<NamespaceAliasDecl>()) {
          target = al->target;
          break;
        }
      }
      if (target == nullptr || !consumePunct("::")) break;
      search = target;
    }
    if (target == nullptr) {
      error("unknown namespace in using-directive");
    } else {
      auto* ud = ctx_.create<UsingDirectiveDecl>();
      ud->target = target;
      ud->setLocation(loc());
      sema_.declare(ud);
      sema_.currentScope()->addUsingNamespace(target);
    }
    expectPunct(";");
    return;
  }
  // using N = type; — an alias declaration behaves like a typedef.
  if (cur().is(TokenKind::Identifier) && peek().isPunct("=")) {
    const std::string name(cur().text);
    const SourceLocation name_loc = loc();
    advance();
    advance();  // =
    const Type* underlying = parseTypeName();
    if (underlying == nullptr) {
      error(concat({"cannot resolve type in alias '", name, "'"}));
      skipToRecovery();
      return;
    }
    auto* td = ctx_.create<TypedefDecl>();
    td->setName(name);
    td->setLocation(name_loc);
    td->underlying = underlying;
    sema_.declare(td);
    expectPunct(";");
    return;
  }
  // using A::x; — make the names visible in the current scope.
  DeclContext* search = nullptr;
  std::string last;
  while (cur().is(TokenKind::Identifier)) {
    last = cur().text;
    advance();
    if (!cur().isPunct("::")) break;
    advance();
    std::vector<Decl*> found = search == nullptr
                                   ? sema_.lookupUnqualified(last)
                                   : sema::Sema::lookupInContext(search, last);
    search = nullptr;
    for (Decl* d : found) {
      if (auto* ns = d->as<NamespaceDecl>()) {
        search = ns;
        break;
      }
      if (auto* cls = d->as<ClassDecl>()) {
        search = cls;
        break;
      }
    }
    if (search == nullptr) break;
  }
  if (search != nullptr && !last.empty()) {
    for (Decl* d : sema::Sema::lookupInContext(search, last)) {
      sema_.declareName(last, d);
    }
  }
  expectPunct(";");
}

void Parser::parseExternBlock() {
  advance();  // extern
  const bool is_c = cur().text == "\"C\"";
  advance();  // linkage string
  const Linkage saved = current_linkage_;
  if (is_c) current_linkage_ = Linkage::C;
  if (consumePunct("{")) {
    while (!cur().isEnd() && !cur().isPunct("}")) parseTopLevel();
    expectPunct("}");
  } else {
    parseTopLevel();  // single declaration
  }
  current_linkage_ = saved;
}

// ---------------------------------------------------------------------------
// Declaration specifiers and types
// ---------------------------------------------------------------------------

bool Parser::startsDeclSpecs() const {
  const Token& t = cur();
  if (t.is(TokenKind::Keyword)) {
    static constexpr std::string_view kSpecs[] = {
        "const", "volatile", "virtual", "static", "inline", "explicit",
        "friend", "typedef", "extern", "register", "mutable", "unsigned",
        "signed", "short", "long", "int", "char", "bool", "float", "double",
        "void", "wchar_t", "class", "struct", "union", "enum", "typename"};
    for (const auto k : kSpecs) {
      if (t.text == k) return true;
    }
    return false;
  }
  return false;
}

bool Parser::startsType() const {
  if (startsDeclSpecs()) return true;
  if (cur().is(TokenKind::Identifier)) {
    return sema_.isTypeName(cur().text);
  }
  return false;
}

Parser::DeclSpecs Parser::parseDeclSpecs(bool allow_no_type) {
  DeclSpecs specs;
  bool is_const = false;
  bool is_volatile = false;
  bool saw_builtin = false;
  bool is_unsigned = false;
  bool is_signed = false;
  int long_count = 0;
  bool is_short = false;
  std::string base;  // "int", "char", "double", ...

  while (true) {
    const Token& t = cur();
    if (t.is(TokenKind::Keyword)) {
      if (t.text == "virtual") { specs.is_virtual = true; advance(); continue; }
      if (t.text == "static") { specs.is_static = true; specs.storage = StorageClass::Static; advance(); continue; }
      if (t.text == "inline") { specs.is_inline = true; advance(); continue; }
      if (t.text == "explicit") { specs.is_explicit = true; advance(); continue; }
      if (t.text == "friend") { specs.is_friend = true; advance(); continue; }
      if (t.text == "typedef") { specs.is_typedef = true; advance(); continue; }
      if (t.text == "extern") { specs.storage = StorageClass::Extern; advance(); continue; }
      if (t.text == "register") { specs.storage = StorageClass::Register; advance(); continue; }
      if (t.text == "mutable") { specs.is_mutable = true; specs.storage = StorageClass::Mutable; advance(); continue; }
      if (t.text == "const") { is_const = true; advance(); continue; }
      if (t.text == "volatile") { is_volatile = true; advance(); continue; }
      if (t.text == "unsigned") { is_unsigned = true; saw_builtin = true; advance(); continue; }
      if (t.text == "signed") { is_signed = true; saw_builtin = true; advance(); continue; }
      if (t.text == "short") { is_short = true; saw_builtin = true; advance(); continue; }
      if (t.text == "long") { ++long_count; saw_builtin = true; advance(); continue; }
      if (t.text == "int" || t.text == "char" || t.text == "bool" ||
          t.text == "float" || t.text == "double" || t.text == "void" ||
          t.text == "wchar_t") {
        if (!base.empty() && !specs.saw_type) base.clear();
        base = t.text;
        saw_builtin = true;
        advance();
        continue;
      }
      if (t.text == "typename") { advance(); continue; }
      if ((t.text == "class" || t.text == "struct" || t.text == "union") &&
          !specs.saw_type && !saw_builtin) {
        // Elaborated type specifier: "class Foo x;" — only when followed by
        // a name that is NOT starting a definition (no '{' / ':' after it).
        if (peek().is(TokenKind::Identifier) &&
            (peek(2).isPunct("*") || peek(2).isPunct("&") ||
             peek(2).is(TokenKind::Identifier))) {
          advance();  // tag keyword
          specs.type = parseNamedType();
          specs.saw_type = specs.type != nullptr;
          continue;
        }
      }
    }
    break;
  }

  if (saw_builtin) {
    BuiltinKind kind = BuiltinKind::Int;
    if (base == "void") kind = BuiltinKind::Void;
    else if (base == "bool") kind = BuiltinKind::Bool;
    else if (base == "wchar_t") kind = BuiltinKind::WChar;
    else if (base == "float") kind = BuiltinKind::Float;
    else if (base == "double")
      kind = long_count > 0 ? BuiltinKind::LongDouble : BuiltinKind::Double;
    else if (base == "char")
      kind = is_unsigned ? BuiltinKind::UChar
                         : (is_signed ? BuiltinKind::SChar : BuiltinKind::Char);
    else {  // int family
      if (is_short) kind = is_unsigned ? BuiltinKind::UShort : BuiltinKind::Short;
      else if (long_count >= 2)
        kind = is_unsigned ? BuiltinKind::ULongLong : BuiltinKind::LongLong;
      else if (long_count == 1)
        kind = is_unsigned ? BuiltinKind::ULong : BuiltinKind::Long;
      else
        kind = is_unsigned ? BuiltinKind::UInt : BuiltinKind::Int;
    }
    specs.type = ctx_.builtin(kind);
    specs.saw_type = true;
  } else if (!specs.saw_type) {
    // Named type?
    if (cur().is(TokenKind::Identifier) || cur().isPunct("::")) {
      // Constructors: inside class C, "C(" is not a type-specifier.
      const bool looks_like_ctor =
          allow_no_type && peek().isPunct("(") &&
          sema_.currentClass() != nullptr &&
          cur().text == sema_.currentClass()->name();
      if (!looks_like_ctor) {
        const std::size_t save = pos_;
        const Type* named = parseNamedType();
        if (named != nullptr) {
          specs.type = named;
          specs.saw_type = true;
        } else {
          pos_ = save;
        }
      }
    }
  }

  if (specs.type != nullptr && (is_const || is_volatile)) {
    specs.type = ctx_.qualified(specs.type, is_const, is_volatile);
  }
  if (specs.type == nullptr && !allow_no_type) {
    // Callers treat a null type as "not a declaration".
  }
  return specs;
}

const Type* Parser::parseNamedType() {
  // [::] segment (:: segment)* where segments may carry template args.
  DeclContext* search = nullptr;  // null = unqualified lookup
  bool absolute = false;
  if (consumePunct("::")) {
    search = ctx_.translationUnit();
    absolute = true;
  }
  (void)absolute;

  while (true) {
    if (!cur().is(TokenKind::Identifier)) return nullptr;
    const std::string name(cur().text);
    const SourceLocation name_loc = loc();
    advance();

    std::vector<Decl*> found = search == nullptr
                                   ? sema_.lookupUnqualified(name)
                                   : sema::Sema::lookupInContext(search, name);
    if (found.empty()) return nullptr;

    // Template-id?
    TemplateDecl* as_template = nullptr;
    for (Decl* d : found) {
      if (auto* td = d->as<TemplateDecl>()) {
        if (td->tkind == TemplateKind::Class ||
            td->tkind == TemplateKind::Alias) {
          as_template = td;
          break;
        }
      }
    }
    const Type* segment_type = nullptr;
    Decl* segment_decl = nullptr;

    if (as_template != nullptr && cur().isPunct("<")) {
      auto args = parseTemplateArgs();
      if (!args) return nullptr;
      bool dependent = false;
      for (const Type* a : *args) dependent = dependent || a->isDependent();
      if (as_template->tkind == TemplateKind::Alias) {
        // Alias templates never instantiate a decl: substitute the
        // arguments into the pattern's underlying type.
        const auto* pattern = as_template->pattern->as<TypedefDecl>();
        if (dependent) {
          segment_type = ctx_.templateSpecType(as_template, *args);
        } else {
          segment_type = sema_.substituteType(pattern->underlying, *args);
        }
      } else if (dependent) {
        segment_type = ctx_.templateSpecType(as_template, *args);
      } else {
        ClassDecl* inst =
            sema_.instantiateClassTemplate(as_template, *args, name_loc);
        if (inst == nullptr) return nullptr;
        segment_type = ctx_.classType(inst);
        segment_decl = inst;
      }
    } else if (as_template != nullptr &&
               as_template->tkind == TemplateKind::Class && inTemplate()) {
      // Injected class name inside the template's own pattern.
      std::vector<const Type*> own;
      own.reserve(as_template->params.size());
      for (const TemplateParamDecl* p : as_template->params) {
        own.push_back(ctx_.templateParamType(p->name(), 0, p->index));
      }
      segment_type = ctx_.templateSpecType(as_template, own);
    } else {
      for (Decl* d : found) {
        switch (d->kind()) {
          case DeclKind::Class: {
            auto* cls = d->as<ClassDecl>();
            if (cls->describing_template != nullptr &&
                cls->instantiated_from == nullptr && !cls->is_specialization) {
              // A class template pattern's name used inside itself is the
              // injected-class-name: Stack means Stack<Object>.
              const auto* td = cls->describing_template;
              std::vector<const Type*> own;
              own.reserve(td->params.size());
              for (const TemplateParamDecl* p : td->params) {
                own.push_back(ctx_.templateParamType(p->name(), 0, p->index));
              }
              segment_type = ctx_.templateSpecType(td, own);
            } else {
              segment_type = ctx_.classType(cls);
            }
            segment_decl = d;
            break;
          }
          case DeclKind::Enum:
            segment_type = ctx_.enumType(d->as<EnumDecl>());
            segment_decl = d;
            break;
          case DeclKind::Typedef: {
            auto* td = d->as<TypedefDecl>();
            segment_type = ctx_.typedefType(td, td->underlying);
            segment_decl = d;
            break;
          }
          case DeclKind::TemplateParam: {
            auto* tp = d->as<TemplateParamDecl>();
            if (tp->param_kind == TemplateParamDecl::Kind::Type)
              segment_type = ctx_.templateParamType(tp->name(), 0, tp->index);
            segment_decl = d;
            break;
          }
          case DeclKind::Namespace:
          case DeclKind::NamespaceAlias:
            segment_decl = d;
            break;
          default:
            break;
        }
        if (segment_type != nullptr || segment_decl != nullptr) break;
      }
    }

    if (cur().isPunct("::")) {
      advance();
      // Descend into the named scope.
      if (segment_decl != nullptr) {
        if (auto* ns = segment_decl->as<NamespaceDecl>()) {
          search = ns;
          continue;
        }
        if (auto* alias = segment_decl->as<NamespaceAliasDecl>()) {
          search = alias->target;
          continue;
        }
        if (auto* cls = segment_decl->as<ClassDecl>()) {
          search = cls;
          continue;
        }
      }
      // Dependent qualifier (Stack<Object>::size_type): not resolvable in
      // the subset — treat the member as an opaque int-like type. But an
      // out-of-line member name ("Stack<Object>::push", "::Stack", "::~",
      // "::operator") is NOT a type; bail so declarator parsing sees it.
      if (segment_type != nullptr && segment_type->isDependent()) {
        if (cur().isPunct("~") || cur().isKeyword("operator")) return nullptr;
        if (cur().is(TokenKind::Identifier) && !peek().isPunct("(")) {
          advance();
          return ctx_.intType();
        }
        return nullptr;
      }
      return nullptr;
    }
    return segment_type;
  }
}

std::optional<std::vector<const Type*>> Parser::parseTemplateArgs() {
  assert(cur().isPunct("<"));
  advance();
  std::vector<const Type*> args;
  if (cur().isPunct(">")) {  // empty list
    advance();
    return args;
  }
  while (true) {
    if (cur().isPunct(">>")) splitRightShift();
    const Type* arg = nullptr;
    if (startsType()) {
      arg = parseTypeName();
    } else if (cur().is(TokenKind::IntLiteral)) {
      // Non-type argument: modeled as its value spelled into a typedef-less
      // marker; the subset tracks non-type args as int builtins.
      arg = ctx_.intType();
      advance();
    }
    if (arg == nullptr) return std::nullopt;
    args.push_back(arg);
    if (cur().isPunct(">>")) splitRightShift();
    if (consumePunct(">")) break;
    if (!consumePunct(",")) return std::nullopt;
  }
  return args;
}

const Type* Parser::parsePointerRefSuffixes(const Type* base) {
  const Type* type = base;
  while (true) {
    if (consumePunct("*")) {
      type = ctx_.pointerTo(type);
      bool c = false, v = false;
      while (true) {
        if (consumeKeyword("const")) { c = true; continue; }
        if (consumeKeyword("volatile")) { v = true; continue; }
        break;
      }
      if (c || v) type = ctx_.qualified(type, c, v);
      continue;
    }
    if (consumePunct("&")) {
      type = ctx_.referenceTo(type);
      continue;
    }
    break;
  }
  return type;
}

const Type* Parser::parseTypeName() {
  bool is_const = false, is_volatile = false;
  while (true) {
    if (consumeKeyword("const")) { is_const = true; continue; }
    if (consumeKeyword("volatile")) { is_volatile = true; continue; }
    if (consumeKeyword("typename")) continue;
    break;
  }
  const Type* type = parseTypeSpecifier();
  if (type == nullptr) return nullptr;
  while (true) {  // trailing cv ("int const")
    if (consumeKeyword("const")) { is_const = true; continue; }
    if (consumeKeyword("volatile")) { is_volatile = true; continue; }
    break;
  }
  if (is_const || is_volatile) type = ctx_.qualified(type, is_const, is_volatile);
  return parsePointerRefSuffixes(type);
}

const Type* Parser::parseTypeSpecifier() {
  const Token& t = cur();
  if (t.is(TokenKind::Keyword)) {
    static const struct {
      std::string_view kw;
      BuiltinKind kind;
    } kBuiltins[] = {
        {"void", BuiltinKind::Void},   {"bool", BuiltinKind::Bool},
        {"char", BuiltinKind::Char},   {"wchar_t", BuiltinKind::WChar},
        {"float", BuiltinKind::Float}, {"double", BuiltinKind::Double},
        {"int", BuiltinKind::Int},
    };
    for (const auto& b : kBuiltins) {
      if (t.text == b.kw) {
        advance();
        return ctx_.builtin(b.kind);
      }
    }
    if (t.text == "unsigned" || t.text == "signed" || t.text == "short" ||
        t.text == "long") {
      // Reuse the decl-spec combination logic.
      DeclSpecs specs = parseDeclSpecs(/*allow_no_type=*/false);
      return specs.type;
    }
    if (t.text == "class" || t.text == "struct" || t.text == "union" ||
        t.text == "enum") {
      advance();  // elaborated specifier
      return parseNamedType();
    }
    return nullptr;
  }
  if (t.is(TokenKind::Identifier) || t.isPunct("::")) return parseNamedType();
  return nullptr;
}

// ---------------------------------------------------------------------------
// Declarators
// ---------------------------------------------------------------------------

std::vector<ParamDecl*> Parser::parseParamList(bool& has_ellipsis) {
  std::vector<ParamDecl*> params;
  has_ellipsis = false;
  if (consumePunct(")")) return params;
  while (true) {
    if (consumePunct("...")) {
      has_ellipsis = true;
      expectPunct(")");
      break;
    }
    if (cur().isKeyword("void") && peek().isPunct(")")) {  // f(void)
      advance();
      advance();
      break;
    }
    DeclSpecs specs = parseDeclSpecs(/*allow_no_type=*/false);
    if (specs.type == nullptr) {
      error("expected parameter type");
      skipBalanced("(", ")");
      break;
    }
    const Type* type = parsePointerRefSuffixes(specs.type);
    auto* param = ctx_.create<ParamDecl>();
    // Function-pointer parameter: "ret (*name)(params)".
    if (cur().isPunct("(") && peek().isPunct("*")) {
      advance();  // (
      advance();  // *
      if (cur().is(TokenKind::Identifier)) {
        param->setName(std::string(cur().text));
        param->setLocation(loc());
        advance();
      }
      expectPunct(")");
      if (cur().isPunct("(")) {
        advance();
        bool inner_ellipsis = false;
        std::vector<ParamDecl*> inner = parseParamList(inner_ellipsis);
        std::vector<const Type*> ptypes;
        ptypes.reserve(inner.size());
        for (const ParamDecl* ip : inner) ptypes.push_back(ip->type);
        type = ctx_.pointerTo(
            ctx_.functionType(type, std::move(ptypes), false, inner_ellipsis, {}));
      }
    } else if (cur().is(TokenKind::Identifier)) {
      param->setName(std::string(cur().text));
      param->setLocation(loc());
      advance();
    }
    // Array parameter suffix decays to pointer.
    while (consumePunct("[")) {
      while (!cur().isEnd() && !cur().isPunct("]")) advance();
      expectPunct("]");
      type = ctx_.pointerTo(type);
    }
    param->type = type;
    if (consumePunct("=")) {
      param->default_arg = parseAssignment();
    }
    params.push_back(param);
    if (consumePunct(")")) break;
    if (!consumePunct(",")) {
      error("expected ',' or ')' in parameter list");
      skipBalanced("(", ")");
      break;
    }
  }
  return params;
}

Parser::Declarator Parser::parseDeclarator(const Type* base, bool allow_abstract) {
  Declarator d;
  const Type* type = parsePointerRefSuffixes(base);

  // Destructor "~Name"?
  if (cur().isPunct("~") && peek().is(TokenKind::Identifier)) {
    advance();
    d.is_dtor = true;
    d.name = concat({"~", cur().text});
    d.name_loc = loc();
    advance();
  } else if (cur().isKeyword("operator")) {
    d.name_loc = loc();
    advance();
    d.is_operator = true;
    if (cur().isPunct("(") && peek().isPunct(")")) {
      d.name = "operator()";
      advance();
      advance();
    } else if (cur().isPunct("[") && peek().isPunct("]")) {
      d.name = "operator[]";
      advance();
      advance();
    } else if (cur().is(TokenKind::Punct)) {
      d.name = concat({"operator", cur().text});
      advance();
    } else if (cur().isKeyword("new") || cur().isKeyword("delete")) {
      d.name = concat({"operator ", cur().text});
      advance();
      if (cur().isPunct("[") && peek().isPunct("]")) {
        d.name += "[]";
        advance();
        advance();
      }
    } else {
      // Conversion operator: operator T()
      d.is_conversion = true;
      d.conversion_type = parseTypeName();
      d.name = "operator " +
               (d.conversion_type != nullptr ? d.conversion_type->spelling()
                                             : std::string("?"));
    }
  } else if (cur().is(TokenKind::Identifier)) {
    // Possibly qualified: A::B<int>::name.
    while (true) {
      const std::string seg(cur().text);
      const SourceLocation seg_loc = loc();
      // Look ahead: is this segment followed by (template-args)? '::'?
      std::size_t after = pos_ + 1;
      if (toks_[after].isPunct("<")) {
        // Only a qualifier candidate if seg names a class template.
        if (sema_.isClassTemplateName(seg)) {
          // Find matching '>' to check for '::'.
          int depth = 0;
          std::size_t j = after;
          for (; j < toks_.size() && !toks_[j].isEnd(); ++j) {
            if (toks_[j].isPunct("<")) ++depth;
            else if (toks_[j].isPunct(">")) {
              if (--depth == 0) { ++j; break; }
            } else if (toks_[j].isPunct(">>")) {
              depth -= 2;
              if (depth <= 0) { ++j; break; }
            } else if (toks_[j].isPunct(";") || toks_[j].isPunct("{")) {
              break;
            }
          }
          if (j < toks_.size() && toks_[j].isPunct("::")) {
            // Qualifier with template args: consume and resolve.
            advance();  // seg
            auto args = parseTemplateArgs();
            expectPunct("::");
            TemplateDecl* td = nullptr;
            for (Decl* cand : sema_.lookupUnqualified(seg)) {
              if (auto* t = cand->as<TemplateDecl>()) {
                if (t->tkind == TemplateKind::Class) { td = t; break; }
              }
            }
            if (td == nullptr || !args) {
              error("cannot resolve qualifier '" + seg + "'");
              break;
            }
            bool dependent = false;
            for (const Type* a : *args) dependent = dependent || a->isDependent();
            if (dependent) {
              d.qualifier_template = td;  // out-of-line member of the pattern
            } else if (Decl* spec = td->findSpecialization(*args)) {
              d.qualifier_class = spec->as<ClassDecl>();
            } else {
              d.qualifier_class =
                  sema_.instantiateClassTemplate(td, *args, seg_loc);
            }
            continue;
          }
        }
        // Not a qualifier: plain name; stop here.
        d.name = seg;
        d.name_loc = seg_loc;
        advance();
        break;
      }
      if (toks_[after].isPunct("::") &&
          (toks_[after + 1].is(TokenKind::Identifier) ||
           toks_[after + 1].isPunct("~") ||
           toks_[after + 1].isKeyword("operator"))) {
        // Namespace or class qualifier without template args.
        advance();  // seg
        advance();  // ::
        Decl* resolved = nullptr;
        std::vector<Decl*> found =
            d.qualifier_class != nullptr
                ? sema::Sema::lookupInContext(d.qualifier_class, seg)
                : sema_.lookupUnqualified(seg);
        for (Decl* cand : found) {
          if (cand->as<NamespaceDecl>() != nullptr ||
              cand->as<ClassDecl>() != nullptr) {
            resolved = cand;
            break;
          }
          if (auto* alias = cand->as<NamespaceAliasDecl>()) {
            resolved = alias->target;
            break;
          }
        }
        if (resolved == nullptr) {
          error("cannot resolve qualifier '" + seg + "'");
          break;
        }
        if (auto* cls = resolved->as<ClassDecl>()) {
          d.qualifier_class = cls;
        }
        // Namespace qualifiers don't change where the entity attaches in
        // the subset (out-of-line namespace members re-open the namespace).
        if (auto* ns = resolved->as<NamespaceDecl>()) {
          (void)ns;
        }
        if (cur().isPunct("~")) {
          advance();
          d.is_dtor = true;
          d.name = concat({"~", cur().text});
          d.name_loc = loc();
          advance();
          break;
        }
        if (cur().isKeyword("operator")) {
          // Re-enter operator handling with qualifier set.
          Declarator op = parseDeclarator(ctx_.voidType(), false);
          d.name = op.name;
          d.name_loc = op.name_loc;
          d.is_operator = op.is_operator;
          d.is_conversion = op.is_conversion;
          d.conversion_type = op.conversion_type;
          break;
        }
        continue;
      }
      // Plain name.
      d.name = seg;
      d.name_loc = seg_loc;
      advance();
      break;
    }
  } else if (!allow_abstract) {
    // No name where one is required.
  }

  // Constructor detection: qualified "C::C" or in-class "C" handled by
  // the caller (needs class context).

  // Function declarator?
  if (cur().isPunct("(")) {
    // Heuristic: it is a function declarator if the parenthesis starts a
    // parameter list (type or ')'), otherwise it is an initializer.
    const Token& inside = peek();
    bool is_params = inside.isPunct(")") || inside.isPunct("...");
    if (!is_params) {
      const std::size_t save = pos_;
      advance();  // (
      is_params = startsType();
      pos_ = save;
    }
    if (is_params || d.is_operator || d.is_dtor) {
      advance();  // (
      d.is_function = true;
      d.params = parseParamList(d.has_ellipsis);
      // cv-qualifier on member functions.
      while (true) {
        if (consumeKeyword("const")) { d.is_const_member = true; continue; }
        if (consumeKeyword("volatile")) continue;
        break;
      }
      // Exception specification.
      if (consumeKeyword("throw")) {
        d.has_exception_spec = true;
        expectPunct("(");
        if (!cur().isPunct(")")) {
          while (true) {
            const Type* t = parseTypeName();
            if (t != nullptr) d.exception_specs.push_back(t);
            if (!consumePunct(",")) break;
          }
        }
        expectPunct(")");
      }
    }
  }

  // Array suffixes (variables).
  while (!d.is_function && cur().isPunct("[")) {
    advance();
    std::int64_t size = -1;
    if (cur().is(TokenKind::IntLiteral)) {
      size = std::stoll(std::string(cur().text), nullptr, 0);
      advance();
    } else {
      while (!cur().isEnd() && !cur().isPunct("]")) advance();
    }
    expectPunct("]");
    type = ctx_.arrayOf(type, size);
  }

  d.type = type;
  return d;
}

// ---------------------------------------------------------------------------
// Declarations (functions and variables)
// ---------------------------------------------------------------------------

void Parser::parseDeclarationOrDefinition(bool in_class, AccessKind access) {
  const std::size_t start = pos_;

  if (cur().isKeyword("enum")) {
    parseEnum(in_class, access);
    return;
  }
  if ((cur().isKeyword("class") || cur().isKeyword("struct") ||
       cur().isKeyword("union"))) {
    // Definition/forward declaration vs elaborated variable decl:
    // "class X {" or "class X : base" or "class X ;" start a class.
    const Token& name = peek();
    const Token& after = peek(2);
    if (name.is(TokenKind::Identifier) &&
        (after.isPunct("{") || after.isPunct(":") || after.isPunct(";"))) {
      DeclSpecs none;
      parseClass(none, nullptr, false, {});
      return;
    }
    if (name.isPunct("{")) {  // anonymous aggregate
      DeclSpecs none;
      parseClass(none, nullptr, false, {});
      return;
    }
  }

  DeclSpecs specs = parseDeclSpecs(/*allow_no_type=*/true);
  if (specs.is_typedef) {
    parseTypedef(specs, in_class, access);
    return;
  }
  if (specs.is_friend && in_class) {
    // "friend class X;" (type already consumed as elaborated) or
    // "friend ret f(..);"
    ClassDecl* cls = sema_.currentClass();
    if (specs.saw_type && cur().isPunct(";")) {
      advance();
      FriendEntry fe;
      fe.is_class = true;
      if (const auto* ct = canonical(specs.type)->as<ClassType>()) {
        fe.name = ct->decl()->name();
        fe.resolved = ct->decl();
      } else {
        fe.name = specs.type->spelling();
      }
      if (cls != nullptr) cls->friends.push_back(fe);
      return;
    }
    if (cur().isKeyword("class") || cur().isKeyword("struct")) {
      advance();
      FriendEntry fe;
      fe.is_class = true;
      if (cur().is(TokenKind::Identifier)) {
        fe.name = cur().text;
        for (Decl* d : sema_.lookupUnqualified(fe.name)) {
          if (d->as<ClassDecl>() != nullptr) {
            fe.resolved = d;
            break;
          }
        }
        advance();
      }
      if (cls != nullptr) cls->friends.push_back(fe);
      expectPunct(";");
      return;
    }
    // friend function: parse as a declaration, record the name.
    Declarator d = parseDeclarator(specs.type != nullptr ? specs.type
                                                         : ctx_.intType(),
                                   false);
    FriendEntry fe;
    fe.name = d.name;
    if (cls != nullptr) cls->friends.push_back(fe);
    if (cur().isPunct("{")) skipBalanced("{", "}");  // inline friend body
    else expectPunct(";");
    return;
  }

  if (!specs.saw_type) {
    // Constructor/destructor (in class or out-of-line), or not a decl.
    const bool maybe_special = cur().isPunct("~") ||
                               cur().is(TokenKind::Identifier) ||
                               cur().isKeyword("operator");
    if (!maybe_special) {
      if (pos_ == start) {
error(concat({"expected declaration, found '", cur().text, "'"}));
        advance();
        skipToRecovery();
      }
      return;
    }
  }

  parseInitDeclarators(specs, in_class, access, nullptr);
}

void Parser::parseInitDeclarators(const DeclSpecs& specs, bool in_class,
                                  AccessKind access,
                                  TemplateDecl* enclosing_template) {
  const Type* base = specs.saw_type ? specs.type : nullptr;
  while (true) {
    Declarator d = parseDeclarator(base != nullptr ? base : ctx_.voidType(),
                                   /*allow_abstract=*/false);

    // Constructor detection.
    ClassDecl* owner = d.qualifier_class;
    if (owner == nullptr && d.qualifier_template != nullptr &&
        d.qualifier_template->pattern != nullptr) {
      owner = d.qualifier_template->pattern->as<ClassDecl>();
    }
    if (owner == nullptr && in_class) owner = sema_.currentClass();
    const bool qualified = d.qualifier_class != nullptr ||
                           d.qualifier_template != nullptr;

    if (!specs.saw_type && d.is_function && owner != nullptr) {
      const std::string& cls_name =
          d.qualifier_template != nullptr ? d.qualifier_template->name()
                                          : owner->name();
      if (d.name == cls_name) d.is_ctor = true;
    }
    if (d.is_dtor && owner == nullptr) {
      error("destructor outside of class");
    }

    if (d.is_function) {
      FunctionDecl* fn = nullptr;
      if (qualified && owner != nullptr) {
        // Out-of-line definition: find the in-class declaration.
        for (Decl* m : owner->children()) {
          auto* cand = m->as<FunctionDecl>();
          if (cand == nullptr || cand->name() != d.name) continue;
          if (cand->params.size() != d.params.size()) continue;
          if (cand->is_const != d.is_const_member) continue;
          fn = cand;
          break;
        }
        if (fn == nullptr) {
          error("no matching member '" + d.name + "' in '" + owner->name() + "'");
          fn = buildFunction(specs, d, AccessKind::Public);
          fn->setParent(owner);
          owner->addChild(fn);
        } else {
          // Update to the definition site (paper Fig. 3: rloc of push is
          // the StackAr.cpp location). Default arguments live on the
          // declaration; carry them over to the definition's params.
          fn->setLocation(d.name_loc);
          for (std::size_t i = 0; i < d.params.size() && i < fn->params.size();
               ++i) {
            if (d.params[i]->default_arg == nullptr)
              d.params[i]->default_arg = fn->params[i]->default_arg;
          }
          fn->params = d.params;
          if (specs.saw_type) fn->return_type = specs.saw_type ? d.type : fn->return_type;
          std::vector<const Type*> ptypes;
          for (const ParamDecl* p : fn->params) ptypes.push_back(p->type);
          fn->signature = ctx_.functionType(fn->return_type, std::move(ptypes),
                                            fn->is_const, fn->has_ellipsis,
                                            fn->exception_specs);
        }
      } else {
        fn = buildFunction(specs, d, in_class ? access : AccessKind::None);
        if (in_class) {
          sema_.declare(fn);
        } else {
          // Merge with a previous declaration of the same signature.
          FunctionDecl* prior = nullptr;
          for (Decl* cand : sema_.lookupUnqualified(d.name)) {
            auto* cf = cand->as<FunctionDecl>();
            if (cf != nullptr && cf->signature == fn->signature) {
              prior = cf;
              break;
            }
          }
          if (prior != nullptr) {
            fn = prior;
            fn->setLocation(d.name_loc);
          } else {
            sema_.declare(fn);
          }
        }
      }

      if (enclosing_template != nullptr && !qualified) {
        // Free function template pattern: detach handled by caller.
      }

      // Pure virtual: "= 0".
      if (cur().isPunct("=") && peek().text == "0") {
        advance();
        advance();
        fn->is_pure_virtual = true;
        fn->is_virtual = true;
      }

      const SourceLocation header_begin = fn->location();
      fn->setHeaderExtent({header_begin, loc()});

      if (cur().isPunct("{") || cur().isPunct(":")) {
        const bool dependent =
            inTemplate() || d.qualifier_template != nullptr;
        parseFunctionRest(fn, dependent, /*delay_body=*/delayed_sink_ != nullptr);
        return;  // a function definition ends the declaration
      }
      expectPunct(";");
      if (consumePunct(",")) continue;  // rare: "void f(), g();"
      return;
    }

    // Variable declarator.
    if (d.name.empty()) {
      error("expected declarator name");
      skipToRecovery();
      return;
    }
    auto* var = ctx_.create<VarDecl>();
    var->setName(d.name);
    var->setLocation(d.name_loc);
    var->setAccess(in_class ? access : AccessKind::None);
    var->type = d.type;
    var->storage = specs.storage;

    if (qualified && owner != nullptr) {
      // Out-of-line static member definition: attach initializer info to
      // the in-class declaration.
      for (Decl* m : owner->children()) {
        if (auto* mv = m->as<VarDecl>(); mv != nullptr && mv->name() == d.name) {
          var = mv;
          break;
        }
      }
    } else {
      sema_.declare(var);
    }

    if (consumePunct("=")) {
      var->init = parseAssignment();
    } else if (cur().isPunct("(")) {
      advance();
      if (!cur().isPunct(")")) {
        while (true) {
          var->ctor_args.push_back(parseAssignment());
          if (!consumePunct(",")) break;
        }
      }
      expectPunct(")");
    }
    if (consumePunct(",")) continue;
    expectPunct(";");
    return;
  }
}

FunctionDecl* Parser::buildFunction(const DeclSpecs& specs, Declarator& d,
                                    AccessKind access) {
  auto* fn = ctx_.create<FunctionDecl>();
  fn->setName(d.name);
  fn->setLocation(d.name_loc);
  fn->setAccess(access);
  if (d.is_ctor) fn->fkind = FunctionKind::Constructor;
  else if (d.is_dtor) fn->fkind = FunctionKind::Destructor;
  else if (d.is_conversion) fn->fkind = FunctionKind::Conversion;
  else if (d.is_operator) fn->fkind = FunctionKind::Operator;
  fn->return_type = d.is_ctor || d.is_dtor
                        ? ctx_.voidType()
                        : (d.is_conversion && d.conversion_type != nullptr
                               ? d.conversion_type
                               : d.type);
  fn->params = d.params;
  fn->is_virtual = specs.is_virtual;
  fn->is_static = specs.is_static;
  fn->is_inline = specs.is_inline;
  fn->is_explicit = specs.is_explicit;
  fn->is_const = d.is_const_member;
  fn->has_ellipsis = d.has_ellipsis;
  fn->storage = specs.storage;
  fn->linkage = current_linkage_;
  fn->exception_specs = d.exception_specs;
  fn->has_exception_spec = d.has_exception_spec;
  std::vector<const Type*> ptypes;
  ptypes.reserve(fn->params.size());
  for (const ParamDecl* p : fn->params) ptypes.push_back(p->type);
  fn->signature = ctx_.functionType(fn->return_type, std::move(ptypes),
                                    fn->is_const, fn->has_ellipsis,
                                    fn->exception_specs);
  return fn;
}

void Parser::parseCtorInitializers(FunctionDecl* fn) {
  // ": member(arg, ...), Base(arg) ..."
  advance();  // ':'
  while (true) {
    if (!cur().is(TokenKind::Identifier)) {
      error("expected member or base name in constructor initializer");
      break;
    }
    FunctionDecl::CtorInit init;
    init.name = cur().text;
    init.location = loc();
    advance();
    if (cur().isPunct("<")) {  // Base<T>(...) — keep the base template name
      skipBalanced("<", ">");
    }
    expectPunct("(");
    if (!cur().isPunct(")")) {
      while (true) {
        init.args.push_back(parseAssignment());
        if (!consumePunct(",")) break;
      }
    }
    expectPunct(")");
    fn->ctor_inits.push_back(std::move(init));
    if (!consumePunct(",")) break;
  }
}

void Parser::parseFunctionRest(FunctionDecl* fn, bool is_dependent_body,
                               bool delay_body) {
  if (delay_body) {
    DelayedBody delayed;
    delayed.fn = fn;
    delayed.token_index = pos_;
    delayed.is_dependent = is_dependent_body;
    delayed_sink_->push_back(delayed);
    // Skip the initializers and the balanced body.
    if (cur().isPunct(":")) {
      while (!cur().isEnd() && !cur().isPunct("{")) advance();
    }
    const SourceLocation body_begin = loc();
    skipBalanced("{", "}");
    fn->setBodyExtent({body_begin, toks_[pos_ > 0 ? pos_ - 1 : 0].location});
    fn->is_defined = true;
    return;
  }

  if (cur().isPunct(":")) parseCtorInitializers(fn);
  if (!cur().isPunct("{")) {
    error("expected function body");
    skipToRecovery();
    return;
  }
  const SourceLocation body_begin = loc();
  sema_.pushScope(sema::ScopeKind::Function, nullptr);
  for (ParamDecl* p : fn->params) {
    if (!p->name().empty()) sema_.declareName(p->name(), p);
  }
  fn->body = parseCompound();
  sema_.popScope();
  const SourceLocation body_end =
      toks_[pos_ > 0 ? pos_ - 1 : 0].location;  // the closing '}'
  fn->setBodyExtent({body_begin, body_end});
  fn->is_defined = true;
  if (!is_dependent_body) sema_.queueForResolution(fn);
}

// ---------------------------------------------------------------------------
// Classes
// ---------------------------------------------------------------------------

void Parser::parseClass(const DeclSpecs& specs, TemplateDecl* enclosing_template,
                        bool is_specialization,
                        std::vector<const Type*> spec_args) {
  (void)specs;
  const SourceLocation class_kw_loc = loc();
  TagKind tag = TagKind::Class;
  if (cur().isKeyword("struct")) tag = TagKind::Struct;
  else if (cur().isKeyword("union")) tag = TagKind::Union;
  advance();  // tag keyword

  std::string name;
  SourceLocation name_loc = loc();
  if (cur().is(TokenKind::Identifier)) {
    name = cur().text;
    name_loc = loc();
    advance();
  }

  // Specialization head: name<args> already parsed by caller? No — caller
  // passes spec_args; the name token here is the template name and the
  // argument list follows.
  if (is_specialization && cur().isPunct("<")) {
    auto args = parseTemplateArgs();
    if (args) spec_args = *args;
  }

  // Forward declaration?
  if (cur().isPunct(";") && !is_specialization && enclosing_template == nullptr) {
    advance();
    // Reuse an existing class of this name if present.
    for (Decl* d : sema_.lookupUnqualified(name)) {
      if (d->as<ClassDecl>() != nullptr) return;
      if (auto* td = d->as<TemplateDecl>();
          td != nullptr && td->tkind == TemplateKind::Class)
        return;
    }
    auto* fwd = ctx_.create<ClassDecl>();
    fwd->setName(name);
    fwd->setLocation(name_loc);
    fwd->tag = tag;
    sema_.declare(fwd);
    return;
  }

  // Find a previously forward-declared incomplete class to complete.
  ClassDecl* cls = nullptr;
  if (!name.empty() && enclosing_template == nullptr && !is_specialization) {
    for (Decl* d : sema_.lookupUnqualified(name)) {
      if (auto* existing = d->as<ClassDecl>();
          existing != nullptr && !existing->is_complete &&
          existing->instantiated_from == nullptr) {
        cls = existing;
        break;
      }
    }
  }
  if (cls == nullptr) {
    cls = ctx_.create<ClassDecl>();
    if (is_specialization) {
      std::string spec_name = name + "<";
      for (std::size_t i = 0; i < spec_args.size(); ++i) {
        if (i > 0) spec_name += ", ";
        spec_name += spec_args[i]->spelling();
      }
      if (spec_name.ends_with('>')) spec_name += ' ';
      spec_name += ">";
      cls->setName(spec_name);
      cls->is_specialization = true;
      cls->template_args = spec_args;
    } else {
      cls->setName(name);
    }
    cls->tag = tag;
    if (enclosing_template != nullptr) {
      // Pattern class: reachable via the template, not by direct lookup.
      cls->setParent(sema_.currentContext());
      sema_.declareName(name, cls);  // visible while parsing (self-reference)
    } else {
      sema_.declare(cls);
    }
  }
  cls->setLocation(name_loc);
  cls->tag = tag;

  if (enclosing_template != nullptr) {
    enclosing_template->pattern = cls;
    enclosing_template->setName(name);
    enclosing_template->setLocation(name_loc);
    cls->describing_template = enclosing_template;
  }
  if (is_specialization && !name.empty()) {
    // Register with the primary template.
    for (Decl* d : sema_.lookupUnqualified(name)) {
      if (auto* td = d->as<TemplateDecl>();
          td != nullptr && td->tkind == TemplateKind::Class) {
        td->specializations.push_back({spec_args, cls});
        if (sema_.options().record_specialization_origin) {
          cls->instantiated_from = td;
        }
        break;
      }
    }
    sema_.declare(cls);
  }

  // Bases.
  if (consumePunct(":")) {
    while (true) {
      BaseSpecifier base;
      base.access = tag == TagKind::Struct ? AccessKind::Public
                                           : AccessKind::Private;
      while (true) {
        if (consumeKeyword("virtual")) { base.is_virtual = true; continue; }
        if (consumeKeyword("public")) { base.access = AccessKind::Public; continue; }
        if (consumeKeyword("protected")) { base.access = AccessKind::Protected; continue; }
        if (consumeKeyword("private")) { base.access = AccessKind::Private; continue; }
        break;
      }
      const Type* base_type = parseNamedType();
      if (base_type == nullptr) {
        error("expected base class name");
        break;
      }
      if (base_type->isDependent()) {
        base.dependent_type = base_type;
      } else if (const auto* ct = canonical(base_type)->as<ClassType>()) {
        base.base = ct->decl();
      }
      cls->bases.push_back(base);
      if (!consumePunct(",")) break;
    }
  }

  if (!expectPunct("{")) {
    skipToRecovery();
    return;
  }
  cls->setHeaderExtent({class_kw_loc, name_loc});
  const SourceLocation body_begin = toks_[pos_ - 1].location;

  sema_.pushScope(sema::ScopeKind::Class, cls);
  parseClassBody(cls);
  sema_.popScope();

  const SourceLocation body_end = toks_[pos_ > 0 ? pos_ - 1 : 0].location;
  cls->setBodyExtent({body_begin, body_end});
  cls->is_complete = true;

  // "class X {} x;" — trailing declarators are rare in the inputs; accept
  // a plain semicolon or a named variable.
  if (cur().is(TokenKind::Identifier)) {
    auto* var = ctx_.create<VarDecl>();
var->setName(std::string(cur().text));
    var->setLocation(loc());
    var->type = ctx_.classType(cls);
    advance();
    sema_.declare(var);
  }
  expectPunct(";");
}

void Parser::parseClassBody(ClassDecl* cls) {
  AccessKind access =
      cls->tag == TagKind::Struct || cls->tag == TagKind::Union
          ? AccessKind::Public
          : AccessKind::Private;

  std::vector<DelayedBody> delayed;
  std::vector<DelayedBody>* saved_sink = delayed_sink_;
  delayed_sink_ = &delayed;

  while (!cur().isEnd() && !cur().isPunct("}")) {
    if (cur().isKeyword("public") && peek().isPunct(":")) {
      access = AccessKind::Public;
      advance();
      advance();
      continue;
    }
    if (cur().isKeyword("protected") && peek().isPunct(":")) {
      access = AccessKind::Protected;
      advance();
      advance();
      continue;
    }
    if (cur().isKeyword("private") && peek().isPunct(":")) {
      access = AccessKind::Private;
      advance();
      advance();
      continue;
    }
    if (cur().isPunct(";")) {
      advance();
      continue;
    }
    if (cur().isKeyword("friend")) {
      parseFriend(cls);
      continue;
    }
    if (cur().isKeyword("class") || cur().isKeyword("struct") ||
        cur().isKeyword("union")) {
      const Token& nm = peek();
      const Token& after = peek(2);
      if (nm.is(TokenKind::Identifier) &&
          (after.isPunct("{") || after.isPunct(":") || after.isPunct(";"))) {
        // Nested class definition/forward declaration.
        const std::size_t before = pos_;
        DeclSpecs none;
        // Propagate access into the nested class by marking afterwards.
        const std::size_t child_index = cls->children().size();
        parseClass(none, nullptr, false, {});
        if (cls->children().size() > child_index) {
          cls->children()[child_index]->setAccess(access);
        }
        if (pos_ == before) advance();
        continue;
      }
    }
    if (cur().isKeyword("enum")) {
      parseEnum(/*in_class=*/true, access);
      continue;
    }
    if (cur().isKeyword("using")) {
      parseUsing();
      continue;
    }
    if (cur().isKeyword("template")) {
      // Member function template of a regular class — the TE_MEMFUNC/
      // TE_STATMEM entities of paper Figure 6. (Member templates of class
      // templates — nested template depth — stay outside the subset.)
      if (inTemplate()) {
        error("member templates of class templates are not supported by "
              "PDT-C++");
        skipToRecovery();
        continue;
      }
      parseMemberTemplate(cls, access);
      continue;
    }
    const std::size_t before = pos_;
    parseDeclarationOrDefinition(/*in_class=*/true, access);
    if (pos_ == before) {
error(concat({"unexpected token '", cur().text, "' in class body"}));
      advance();
    }
  }
  expectPunct("}");

  delayed_sink_ = saved_sink;
  parseDelayedBodies(cls, std::move(delayed));
}

void Parser::parseDelayedBodies(ClassDecl* cls, std::vector<DelayedBody> bodies) {
  for (const DelayedBody& delayed : bodies) {
    const std::size_t save = pos_;
    pos_ = delayed.token_index;
    sema_.pushScope(sema::ScopeKind::Class, cls);
    sema_.pushScope(sema::ScopeKind::Function, nullptr);
    for (ParamDecl* p : delayed.fn->params) {
      if (!p->name().empty()) sema_.declareName(p->name(), p);
    }
    if (cur().isPunct(":")) parseCtorInitializers(delayed.fn);
    if (cur().isPunct("{")) {
      delayed.fn->body = parseCompound();
      delayed.fn->is_defined = true;
      if (!delayed.is_dependent) sema_.queueForResolution(delayed.fn);
    }
    sema_.popScope();
    sema_.popScope();
    pos_ = save;
  }
}

void Parser::parseMemberTemplate(ClassDecl* cls, AccessKind access) {
  const std::size_t start = pos_;
  const SourceLocation template_loc = loc();
  advance();  // template
  if (!cur().isPunct("<")) {
    error("expected template parameter list");
    skipToRecovery();
    return;
  }
  sema_.pushScope(sema::ScopeKind::TemplateParams, nullptr);
  ++template_depth_;
  std::vector<TemplateParamDecl*> params = parseTemplateParams();

  DeclSpecs specs = parseDeclSpecs(/*allow_no_type=*/true);
  Declarator d = parseDeclarator(
      specs.type != nullptr ? specs.type : ctx_.voidType(), false);
  if (!d.is_function) {
    error("expected a member function template");
    skipToRecovery();
    --template_depth_;
    sema_.popScope();
    return;
  }

  auto* td = ctx_.create<TemplateDecl>();
  td->tkind = specs.is_static ? TemplateKind::StaticMem
                              : TemplateKind::MemberFunc;
  td->setName(d.name);
  td->setLocation(d.name_loc);
  td->params = std::move(params);

  FunctionDecl* fn = buildFunction(specs, d, access);
  fn->describing_template = td;
  fn->setParent(cls);  // member pattern: reachable via the template only
  td->pattern = fn;
  td->setAccess(access);
  td->setParent(cls);
  cls->addChild(td);
  sema_.declareName(d.name, td);
  td->setHeaderExtent({template_loc, loc()});

  if (cur().isPunct("{")) {
    // Dependent body: parsed now; resolution happens per instantiation.
    parseFunctionRest(fn, /*is_dependent_body=*/true, /*delay_body=*/false);
    td->setBodyExtent(fn->bodyExtent());
    td->text = captureText(start, pos_);
    if (const auto brace = td->text.find('{'); brace != std::string::npos) {
      td->text = td->text.substr(0, brace) + "{...}";
    }
  } else {
    expectPunct(";");
  }
  --template_depth_;
  sema_.popScope();
}

void Parser::parseFriend(ClassDecl* cls) {
  advance();  // friend
  FriendEntry fe;
  if (cur().isKeyword("class") || cur().isKeyword("struct")) {
    advance();
    fe.is_class = true;
    if (cur().is(TokenKind::Identifier)) {
      fe.name = cur().text;
      for (Decl* d : sema_.lookupUnqualified(fe.name)) {
        if (d->as<ClassDecl>() != nullptr) {
          fe.resolved = d;
          break;
        }
      }
      advance();
    }
    cls->friends.push_back(fe);
    expectPunct(";");
    return;
  }
  // friend function declaration (possibly with inline body).
  DeclSpecs specs = parseDeclSpecs(/*allow_no_type=*/true);
  Declarator d = parseDeclarator(
      specs.type != nullptr ? specs.type : ctx_.intType(), false);
  fe.name = d.name;
  cls->friends.push_back(fe);
  if (cur().isPunct("{")) skipBalanced("{", "}");
  else expectPunct(";");
}

// ---------------------------------------------------------------------------
// Enums and typedefs
// ---------------------------------------------------------------------------

void Parser::parseEnum(bool in_class, AccessKind access) {
  const SourceLocation enum_loc = loc();
  advance();  // enum
  auto* en = ctx_.create<EnumDecl>();
  en->setAccess(in_class ? access : AccessKind::None);
  if (cur().is(TokenKind::Identifier)) {
en->setName(std::string(cur().text));
    en->setLocation(loc());
    advance();
  } else {
    en->setLocation(enum_loc);
  }
  sema_.declare(en);
  if (!expectPunct("{")) {
    skipToRecovery();
    return;
  }
  long long next_value = 0;
  while (!cur().isEnd() && !cur().isPunct("}")) {
    if (!cur().is(TokenKind::Identifier)) {
      error("expected enumerator name");
      skipToRecovery();
      return;
    }
    auto* e = ctx_.create<EnumeratorDecl>();
e->setName(std::string(cur().text));
    e->setLocation(loc());
    advance();
    if (consumePunct("=")) {
      // Constant expressions: accept literals and previously seen
      // enumerators; anything else keeps the running counter.
      bool neg = false;
      if (consumePunct("-")) neg = true;
      if (cur().is(TokenKind::IntLiteral)) {
        next_value = std::stoll(std::string(cur().text), nullptr, 0);
        if (neg) next_value = -next_value;
        advance();
      } else {
        while (!cur().isEnd() && !cur().isPunct(",") && !cur().isPunct("}"))
          advance();
      }
    }
    e->value = next_value++;
    // Unscoped enumerators are members of the enclosing scope (C++98):
    // visible to both parse-time and resolution-time lookup.
    sema_.declare(e);
    en->enumerators.push_back(e);
    if (!consumePunct(",")) break;
  }
  expectPunct("}");
  expectPunct(";");
}

void Parser::parseTypedef(const DeclSpecs& specs, bool in_class,
                          AccessKind access) {
  const Type* base = specs.type;
  if (base == nullptr) {
    error("typedef requires a type");
    skipToRecovery();
    return;
  }
  Declarator d = parseDeclarator(base, /*allow_abstract=*/false);
  auto* td = ctx_.create<TypedefDecl>();
  td->setName(d.name);
  td->setLocation(d.name_loc);
  td->setAccess(in_class ? access : AccessKind::None);
  td->underlying = d.is_function
                       ? ctx_.pointerTo(d.type)  // simplified function typedefs
                       : d.type;
  sema_.declare(td);
  expectPunct(";");
}

// ---------------------------------------------------------------------------
// Templates
// ---------------------------------------------------------------------------

std::vector<TemplateParamDecl*> Parser::parseTemplateParams() {
  std::vector<TemplateParamDecl*> params;
  expectPunct("<");
  unsigned index = 0;
  while (!cur().isEnd() && !cur().isPunct(">")) {
    auto* p = ctx_.create<TemplateParamDecl>();
    p->index = index++;
    if (cur().isKeyword("class") || cur().isKeyword("typename")) {
      advance();
      p->param_kind = TemplateParamDecl::Kind::Type;
      if (cur().is(TokenKind::Identifier)) {
p->setName(std::string(cur().text));
        p->setLocation(loc());
        advance();
      }
      if (consumePunct("=")) {
        p->default_type = parseTypeName();
      }
    } else {
      // Non-type parameter: "int N" etc.
      p->param_kind = TemplateParamDecl::Kind::NonType;
      p->type = parseTypeName();
      if (cur().is(TokenKind::Identifier)) {
p->setName(std::string(cur().text));
        p->setLocation(loc());
        advance();
      }
      if (consumePunct("=")) {
        p->default_value = parseAssignment();
      }
    }
    params.push_back(p);
    if (!p->name().empty()) sema_.declareName(p->name(), p);
    if (!consumePunct(",")) break;
  }
  if (cur().isPunct(">>")) splitRightShift();
  expectPunct(">");
  return params;
}

void Parser::parseTemplate() {
  const std::size_t start = pos_;
  const SourceLocation template_loc = loc();
  advance();  // template

  if (!cur().isPunct("<")) {
    parseExplicitInstantiation(template_loc);
    return;
  }
  if (peek().isPunct(">")) {
    advance();
    advance();
    parseExplicitSpecialization(template_loc);
    return;
  }

  sema_.pushScope(sema::ScopeKind::TemplateParams, nullptr);
  ++template_depth_;
  std::vector<TemplateParamDecl*> params = parseTemplateParams();
  parseTemplateEntity(std::move(params), template_loc, start);
  --template_depth_;
  sema_.popScope();
}

void Parser::parseTemplateEntity(std::vector<TemplateParamDecl*> params,
                                 SourceLocation template_loc,
                                 std::size_t template_index) {
  const std::size_t entity_start = template_index;

  if (cur().isKeyword("using")) {
    // Alias template: template <class T> using Ptr = T*;
    advance();
    if (!cur().is(TokenKind::Identifier) || !peek().isPunct("=")) {
      error("expected 'name =' after 'using' in alias template");
      skipToRecovery();
      return;
    }
    const std::string name(cur().text);
    const SourceLocation name_loc = loc();
    advance();
    advance();  // =
    const Type* underlying = parseTypeName();
    if (underlying == nullptr) {
      error(concat({"cannot resolve type in alias template '", name, "'"}));
      skipToRecovery();
      return;
    }
    auto* pattern = ctx_.create<TypedefDecl>();
    pattern->setName(name);
    pattern->setLocation(name_loc);
    pattern->underlying = underlying;
    auto* td = ctx_.create<TemplateDecl>();
    td->tkind = TemplateKind::Alias;
    td->setName(name);
    td->setLocation(name_loc);
    td->params = std::move(params);
    td->pattern = pattern;
    pattern->describing_template = td;
    sema_.declareInEnclosing(td);
    expectPunct(";");
    td->text = captureText(entity_start, pos_);
    td->setHeaderExtent({template_loc, name_loc});
    return;
  }

  if (cur().isKeyword("class") || cur().isKeyword("struct") ||
      cur().isKeyword("union")) {
    const Token& nm = peek();
    const Token& after = peek(2);
    if (nm.is(TokenKind::Identifier) &&
        (after.isPunct("{") || after.isPunct(":") || after.isPunct(";"))) {
      // Class template (or forward declaration of one).
      if (after.isPunct(";")) {
        // Forward declaration: create/find the template, no pattern yet.
        const std::string name(nm.text);
        bool exists = false;
        for (Decl* d : sema_.lookupUnqualified(name)) {
          if (d->as<TemplateDecl>() != nullptr) exists = true;
        }
        if (!exists) {
          auto* td = ctx_.create<TemplateDecl>();
          td->tkind = TemplateKind::Class;
          td->setName(name);
          td->setLocation(nm.location);
          td->params = params;
          sema_.declareInEnclosing(td);
        }
        advance();
        advance();
        advance();  // class Name ;
        return;
      }
      // Definition: find an existing forward-declared template or create.
      TemplateDecl* td = nullptr;
      for (Decl* d : sema_.lookupUnqualified(nm.text)) {
        if (auto* existing = d->as<TemplateDecl>();
            existing != nullptr && existing->tkind == TemplateKind::Class &&
            existing->pattern == nullptr) {
          td = existing;
          break;
        }
      }
      if (td == nullptr) {
        td = ctx_.create<TemplateDecl>();
        td->tkind = TemplateKind::Class;
        td->setName(std::string(nm.text));
        td->setLocation(nm.location);
        sema_.declareInEnclosing(td);
      }
      td->params = params;
      DeclSpecs none;
      parseClass(none, td, false, {});
      td->text = captureText(entity_start, pos_);
      // Compact the text like the paper's excerpts: body elided.
      if (const auto brace = td->text.find('{'); brace != std::string::npos) {
        td->text = td->text.substr(0, brace) + "{...};";
      }
      td->setHeaderExtent({template_loc, td->location()});
      if (td->pattern != nullptr) {
        td->setBodyExtent(td->pattern->bodyExtent());
        // Member functions defined inline in the pattern get their own
        // template entities (tkind memfunc/statmem), as EDG reports them.
        auto* pattern_cls = td->pattern->as<ClassDecl>();
        const std::vector<Decl*> members = pattern_cls->children();
        for (Decl* m : members) {
          auto* fn = m->as<FunctionDecl>();
          if (fn == nullptr || !fn->is_defined) continue;
          auto* te = ctx_.create<TemplateDecl>();
          te->tkind = fn->is_static ? TemplateKind::StaticMem
                                    : TemplateKind::MemberFunc;
          te->setName(fn->name());
          te->setLocation(fn->location());
          te->setHeaderExtent(fn->headerExtent());
          te->setBodyExtent(fn->bodyExtent());
          te->params = td->params;
          te->pattern = fn;
          te->text = "template <...> " + fn->name() + "(...) {...}";
          te->setParent(pattern_cls);
          pattern_cls->addChild(te);
          fn->describing_template = te;
        }
      }
      return;
    }
  }

  // Function template, out-of-line member definition, or static data
  // member definition.
  DeclSpecs specs = parseDeclSpecs(/*allow_no_type=*/true);
  Declarator d = parseDeclarator(
      specs.type != nullptr ? specs.type : ctx_.voidType(), false);

  if (d.qualifier_template != nullptr) {
    // Out-of-line member of a class template.
    auto* pattern_cls = d.qualifier_template->pattern != nullptr
                            ? d.qualifier_template->pattern->as<ClassDecl>()
                            : nullptr;
    if (pattern_cls == nullptr) {
      error("out-of-line member of undefined class template");
      skipToRecovery();
      return;
    }
    if (!specs.saw_type && d.is_function &&
        d.name == d.qualifier_template->name()) {
      d.is_ctor = true;
    }
    if (d.is_function) {
      FunctionDecl* member = nullptr;
      for (Decl* m : pattern_cls->children()) {
        auto* cand = m->as<FunctionDecl>();
        if (cand == nullptr || cand->name() != d.name) continue;
        if (cand->params.size() != d.params.size()) continue;
        if (cand->is_const != d.is_const_member) continue;
        member = cand;
        break;
      }
      if (member == nullptr) {
        error("no matching member '" + d.name + "' in class template '" +
              d.qualifier_template->name() + "'");
        skipToRecovery();
        return;
      }
      // The definition site becomes the member's reported location
      // (paper Fig. 3: rloc/rpos of push point into StackAr.cpp).
      // Default arguments carry over from the in-class declaration.
      member->setLocation(d.name_loc);
      for (std::size_t i = 0; i < d.params.size() && i < member->params.size();
           ++i) {
        if (d.params[i]->default_arg == nullptr)
          d.params[i]->default_arg = member->params[i]->default_arg;
      }
      member->params = d.params;
      member->setHeaderExtent({template_loc, loc()});
      auto* te = ctx_.create<TemplateDecl>();
      te->tkind = member->is_static ? TemplateKind::StaticMem
                                    : TemplateKind::MemberFunc;
      te->setName(member->name());
      te->setLocation(d.name_loc);
      te->params = d.qualifier_template->params;
      te->pattern = member;
      te->setParent(pattern_cls);
      pattern_cls->addChild(te);
      member->describing_template = te;

      if (cur().isPunct("{") || cur().isPunct(":")) {
        sema_.pushScope(sema::ScopeKind::Class, pattern_cls);
        parseFunctionRest(member, /*is_dependent_body=*/true,
                          /*delay_body=*/false);
        sema_.popScope();
        te->setHeaderExtent({template_loc, member->headerExtent().end});
        te->setBodyExtent(member->bodyExtent());
        te->text = captureText(entity_start, pos_);
        if (const auto brace = te->text.find('{'); brace != std::string::npos) {
          te->text = te->text.substr(0, brace) + "{...}";
        }
      } else {
        expectPunct(";");
      }
      return;
    }
    // Static data member definition: template<class T> int C<T>::count = 0;
    VarDecl* member_var = nullptr;
    for (Decl* m : pattern_cls->children()) {
      if (auto* mv = m->as<VarDecl>(); mv != nullptr && mv->name() == d.name) {
        member_var = mv;
        break;
      }
    }
    if (member_var == nullptr) {
      error("no matching static member '" + d.name + "'");
      skipToRecovery();
      return;
    }
    auto* te = ctx_.create<TemplateDecl>();
    te->tkind = TemplateKind::StaticMem;
    te->setName(d.name);
    te->setLocation(d.name_loc);
    te->params = d.qualifier_template->params;
    te->pattern = member_var;
    te->setParent(pattern_cls);
    pattern_cls->addChild(te);
    member_var->describing_template = te;
    if (consumePunct("=")) member_var->init = parseAssignment();
    expectPunct(";");
    return;
  }

  // Free function template.
  if (!d.is_function) {
    error("expected a function template or member definition");
    skipToRecovery();
    return;
  }
  auto* td = ctx_.create<TemplateDecl>();
  td->tkind = TemplateKind::Function;
  td->setName(d.name);
  td->setLocation(d.name_loc);
  td->params = std::move(params);
  FunctionDecl* fn = buildFunction(specs, d, AccessKind::None);
  fn->describing_template = td;
  fn->setParent(sema_.currentContext());
  td->pattern = fn;
  sema_.declareInEnclosing(td);
  td->setHeaderExtent({template_loc, loc()});
  if (cur().isPunct("{")) {
    parseFunctionRest(fn, /*is_dependent_body=*/true, /*delay_body=*/false);
    td->setBodyExtent(fn->bodyExtent());
    td->text = captureText(entity_start, pos_);
    if (const auto brace = td->text.find('{'); brace != std::string::npos) {
      td->text = td->text.substr(0, brace) + "{...}";
    }
  } else {
    expectPunct(";");
  }
}

void Parser::parseExplicitSpecialization(SourceLocation template_loc) {
  if (cur().isKeyword("class") || cur().isKeyword("struct") ||
      cur().isKeyword("union")) {
    DeclSpecs none;
    parseClass(none, nullptr, /*is_specialization=*/true, {});
    return;
  }
  // Function specialization: template<> ret name<args>(params) {...}
  DeclSpecs specs = parseDeclSpecs(/*allow_no_type=*/true);
  if (!cur().is(TokenKind::Identifier)) {
    error("expected specialization name");
    skipToRecovery();
    return;
  }
  const std::string name(cur().text);
  const SourceLocation name_loc = loc();
  advance();
  std::vector<const Type*> args;
  if (cur().isPunct("<")) {
    auto parsed = parseTemplateArgs();
    if (parsed) args = *parsed;
  }
  TemplateDecl* td = nullptr;
  for (Decl* d : sema_.lookupUnqualified(name)) {
    if (auto* t = d->as<TemplateDecl>();
        t != nullptr && t->tkind == TemplateKind::Function) {
      td = t;
      break;
    }
  }
  if (td == nullptr) {
    error("specialization of unknown function template '" + name + "'");
    skipToRecovery();
    return;
  }
  Declarator d;
  d.name = name;
  d.name_loc = name_loc;
  if (expectPunct("(")) {
    d.is_function = true;
    d.params = parseParamList(d.has_ellipsis);
  }
  while (consumeKeyword("const")) d.is_const_member = true;
  d.type = specs.type != nullptr ? specs.type : ctx_.voidType();
  FunctionDecl* fn = buildFunction(specs, d, AccessKind::None);
  fn->is_specialization = true;
  fn->template_args = args;
  if (sema_.options().record_specialization_origin) fn->instantiated_from = td;
  fn->setParent(td->parent());
  if (td->parent() != nullptr) td->parent()->addChild(fn);
  if (args.empty()) {
    // Deduce from parameter types against the pattern (exact-match only).
    const auto* pattern = td->pattern != nullptr
                              ? td->pattern->as<FunctionDecl>()
                              : nullptr;
    if (pattern != nullptr && pattern->params.size() == fn->params.size()) {
      args.assign(td->params.size(), nullptr);
      for (std::size_t i = 0; i < fn->params.size(); ++i) {
        if (const auto* tp =
                canonical(pattern->params[i]->type)->as<TemplateParamType>()) {
          if (tp->index() < args.size())
            args[tp->index()] = canonical(fn->params[i]->type);
        }
      }
      bool complete = true;
      for (const Type* a : args) complete = complete && a != nullptr;
      if (!complete) args.clear();
      fn->template_args = args;
    }
  }
  if (!args.empty()) td->specializations.push_back({args, fn});
  (void)template_loc;
  if (cur().isPunct("{")) {
    parseFunctionRest(fn, /*is_dependent_body=*/false, /*delay_body=*/false);
  } else {
    expectPunct(";");
  }
}

void Parser::parseExplicitInstantiation(SourceLocation template_loc) {
  // "template class Stack<int>;" — instantiate everything (C++ semantics:
  // explicit instantiation definitions instantiate all members).
  if (cur().isKeyword("class") || cur().isKeyword("struct")) {
    advance();
    const Type* type = parseNamedType();
    expectPunct(";");
    if (type == nullptr) {
      diags_.error(template_loc, "malformed explicit instantiation");
      return;
    }
    if (const auto* ct = canonical(type)->as<ClassType>()) {
      for (Decl* m : ct->decl()->children()) {
        if (auto* fn = m->as<FunctionDecl>()) sema_.noteUsed(fn);
      }
    }
    return;
  }
  diags_.error(template_loc,
               "only class explicit instantiations are supported");
  skipToRecovery();
}

}  // namespace pdt::parse
